"""Survey instrument model: questions and questionnaires.

The paper's Sec. 3 survey asked each application provider one multi-choice
question ("which of the 25 tools would improve your workload in a Computing
Continuum environment?").  The instrument model is general enough for richer
follow-up surveys: single choice, multiple choice with cardinality bounds,
Likert scales, and free text.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from repro.errors import ResponseValidationError, SurveyError, ValidationError

__all__ = [
    "Question",
    "SingleChoiceQuestion",
    "MultiChoiceQuestion",
    "LikertQuestion",
    "FreeTextQuestion",
    "Questionnaire",
]


@dataclass(frozen=True, slots=True)
class Question:
    """Base class for survey questions.

    Parameters
    ----------
    key:
        Stable identifier of the question inside its questionnaire.
    prompt:
        The text shown to respondents.
    required:
        Whether a response must answer this question.
    """

    key: str
    prompt: str
    required: bool = True

    def __post_init__(self) -> None:
        if not self.key:
            raise ValidationError("question key must be non-empty")
        if not self.prompt:
            raise ValidationError("question prompt must be non-empty")

    def validate_answer(self, answer: object) -> object:
        """Validate and normalize *answer*; subclasses override."""
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class SingleChoiceQuestion(Question):
    """Pick exactly one option."""

    options: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        Question.__post_init__(self)
        object.__setattr__(self, "options", tuple(self.options))
        if len(self.options) < 2:
            raise ValidationError(
                f"question {self.key!r} needs at least two options"
            )
        if len(set(self.options)) != len(self.options):
            raise ValidationError(f"question {self.key!r} has duplicate options")

    def validate_answer(self, answer: object) -> str:
        if not isinstance(answer, str) or answer not in self.options:
            raise ResponseValidationError(
                f"question {self.key!r}: {answer!r} is not one of the options"
            )
        return answer


@dataclass(frozen=True, slots=True)
class MultiChoiceQuestion(Question):
    """Pick a subset of options, optionally bounded.

    ``min_choices``/``max_choices`` bound the subset size; ``max_choices``
    of ``None`` means unbounded above.
    """

    options: tuple[str, ...] = ()
    min_choices: int = 0
    max_choices: int | None = None

    def __post_init__(self) -> None:
        Question.__post_init__(self)
        object.__setattr__(self, "options", tuple(self.options))
        if not self.options:
            raise ValidationError(f"question {self.key!r} needs options")
        if len(set(self.options)) != len(self.options):
            raise ValidationError(f"question {self.key!r} has duplicate options")
        if self.min_choices < 0:
            raise ValidationError("min_choices must be >= 0")
        if self.max_choices is not None and self.max_choices < self.min_choices:
            raise ValidationError("max_choices must be >= min_choices")

    def validate_answer(self, answer: object) -> tuple[str, ...]:
        if isinstance(answer, str) or not isinstance(answer, Sequence):
            raise ResponseValidationError(
                f"question {self.key!r}: answer must be a sequence of options"
            )
        chosen = tuple(answer)
        if len(set(chosen)) != len(chosen):
            raise ResponseValidationError(
                f"question {self.key!r}: duplicate choices {chosen!r}"
            )
        unknown = [c for c in chosen if c not in self.options]
        if unknown:
            raise ResponseValidationError(
                f"question {self.key!r}: unknown options {unknown!r}"
            )
        if len(chosen) < self.min_choices:
            raise ResponseValidationError(
                f"question {self.key!r}: needs >= {self.min_choices} choices"
            )
        if self.max_choices is not None and len(chosen) > self.max_choices:
            raise ResponseValidationError(
                f"question {self.key!r}: allows <= {self.max_choices} choices"
            )
        return chosen


@dataclass(frozen=True, slots=True)
class LikertQuestion(Question):
    """An ordinal 1..scale rating (default 5-point)."""

    scale: int = 5

    def __post_init__(self) -> None:
        Question.__post_init__(self)
        if self.scale < 2:
            raise ValidationError("Likert scale must have >= 2 points")

    def validate_answer(self, answer: object) -> int:
        if isinstance(answer, bool) or not isinstance(answer, int):
            raise ResponseValidationError(
                f"question {self.key!r}: answer must be an integer"
            )
        if not 1 <= answer <= self.scale:
            raise ResponseValidationError(
                f"question {self.key!r}: {answer} outside 1..{self.scale}"
            )
        return answer


@dataclass(frozen=True, slots=True)
class FreeTextQuestion(Question):
    """Unconstrained text, optionally length-bounded."""

    max_length: int | None = None

    def validate_answer(self, answer: object) -> str:
        if not isinstance(answer, str):
            raise ResponseValidationError(
                f"question {self.key!r}: answer must be a string"
            )
        text = answer.strip()
        if self.required and not text:
            raise ResponseValidationError(
                f"question {self.key!r}: required answer is empty"
            )
        if self.max_length is not None and len(text) > self.max_length:
            raise ResponseValidationError(
                f"question {self.key!r}: answer exceeds {self.max_length} chars"
            )
        return text


class Questionnaire:
    """An ordered collection of questions with unique keys."""

    def __init__(self, key: str, title: str, questions: Sequence[Question] = ()) -> None:
        if not key:
            raise ValidationError("questionnaire key must be non-empty")
        if not title:
            raise ValidationError("questionnaire title must be non-empty")
        self.key = key
        self.title = title
        self._questions: dict[str, Question] = {}
        for question in questions:
            self.add(question)

    def add(self, question: Question) -> None:
        """Append *question*; reject duplicate keys."""
        if question.key in self._questions:
            raise SurveyError(
                f"duplicate question key {question.key!r} in {self.key!r}"
            )
        self._questions[question.key] = question

    def __getitem__(self, key: str) -> Question:
        try:
            return self._questions[key]
        except KeyError:
            raise SurveyError(f"unknown question {key!r}") from None

    def __iter__(self) -> Iterator[Question]:
        return iter(self._questions.values())

    def __len__(self) -> int:
        return len(self._questions)

    def __contains__(self, key: object) -> bool:
        return key in self._questions

    @property
    def keys(self) -> tuple[str, ...]:
        """Question keys in questionnaire order."""
        return tuple(self._questions)

    @property
    def required_keys(self) -> tuple[str, ...]:
        """Keys of all required questions."""
        return tuple(q.key for q in self if q.required)


def tool_selection_questionnaire(tool_names: Sequence[str]) -> Questionnaire:
    """The paper's Sec. 3 instrument: one multi-choice over the tool catalogue."""
    return Questionnaire(
        "tool-selection",
        "Tool selection for Computing Continuum integration",
        [
            MultiChoiceQuestion(
                key="selected-tools",
                prompt=(
                    "Which of the collected tools do you deem valuable to "
                    "improve the current status of your workload, with a "
                    "specific focus on workflow execution in a Computing "
                    "Continuum environment?"
                ),
                options=tuple(tool_names),
                min_choices=0,
            ),
            FreeTextQuestion(
                key="motivation",
                prompt="Briefly motivate your selection.",
                required=False,
            ),
        ],
    )


__all__.append("tool_selection_questionnaire")
