"""Bipartite graphs of the study ecosystem.

Two bipartite structures underlie the paper's community analysis:

* **institution × direction** — which institution works on which direction
  (Fig. 3 is a degree histogram of this graph);
* **tool × application** — the Table 2 selection matrix as a graph.

Built on networkx so the metrics layer can reuse its algorithms.
"""

from __future__ import annotations

import networkx as nx

from repro.core.catalog import ApplicationCatalog, ToolCatalog
from repro.core.selection import SelectionMatrix
from repro.core.taxonomy import ClassificationScheme

__all__ = [
    "institution_direction_graph",
    "tool_application_graph",
    "project_institutions",
    "project_tools",
]


def institution_direction_graph(
    tools: ToolCatalog, scheme: ClassificationScheme
) -> nx.Graph:
    """Bipartite graph: institutions ↔ primary directions they cover.

    Node attribute ``bipartite`` is ``"institution"`` or ``"direction"``;
    edge attribute ``weight`` counts the institution's tools in that
    direction; edge attribute ``tools`` lists their keys.
    """
    graph = nx.Graph()
    for key in scheme.keys:
        graph.add_node(key, bipartite="direction")
    for institution in tools.institutions():
        graph.add_node(institution, bipartite="institution")
    for tool in tools:
        if graph.has_edge(tool.institution, tool.primary_direction):
            edge = graph.edges[tool.institution, tool.primary_direction]
            edge["weight"] += 1
            edge["tools"].append(tool.key)
        else:
            graph.add_edge(
                tool.institution,
                tool.primary_direction,
                weight=1,
                tools=[tool.key],
            )
    return graph


def tool_application_graph(
    tools: ToolCatalog,
    applications: ApplicationCatalog,
    *,
    selection: SelectionMatrix | None = None,
) -> nx.Graph:
    """Bipartite graph: tools ↔ applications that selected them.

    Isolated tools (never selected) are kept as nodes so degree statistics
    see the full catalogue.
    """
    graph = nx.Graph()
    for tool in tools:
        graph.add_node(tool.key, bipartite="tool",
                       direction=tool.primary_direction)
    for app in applications.ordered():
        graph.add_node(app.key, bipartite="application", section=app.section)
        selected = (
            selection.tools_of(app.key)
            if selection is not None
            else app.selected_tools
        )
        for tool_key in selected:
            graph.add_edge(tool_key, app.key)
    return graph


def _nodes_of(graph: nx.Graph, side: str) -> list[str]:
    return [n for n, d in graph.nodes(data=True) if d.get("bipartite") == side]


def project_institutions(graph: nx.Graph) -> nx.Graph:
    """Weighted institution–institution projection.

    Two institutions are linked when they share a research direction; the
    edge weight counts shared directions — the paper's "direct links
    between highly specialized groups".
    """
    institutions = _nodes_of(graph, "institution")
    return nx.bipartite.weighted_projected_graph(graph, institutions)


def project_tools(graph: nx.Graph) -> nx.Graph:
    """Weighted tool–tool projection over shared selecting applications.

    Two tools are linked when at least one application selected both —
    tools the community wants *integrated* (the paper's Sec. 5 plan).
    """
    tools = _nodes_of(graph, "tool")
    return nx.bipartite.weighted_projected_graph(graph, tools)
