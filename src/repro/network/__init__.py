"""Network substrate: bipartite ecosystem graphs and their metrics."""

from repro.network.bipartite import (
    institution_direction_graph,
    project_institutions,
    project_tools,
    tool_application_graph,
)
from repro.network.recommend import (
    PairRecommendation,
    complementarity,
    recommend_collaborations,
)
from repro.network.metrics import (
    centrality_ranking,
    degree_distribution,
    density_report,
    integration_pairs,
    specialization_index,
)

__all__ = [
    "PairRecommendation",
    "centrality_ranking",
    "complementarity",
    "recommend_collaborations",
    "degree_distribution",
    "density_report",
    "institution_direction_graph",
    "integration_pairs",
    "project_institutions",
    "project_tools",
    "specialization_index",
    "tool_application_graph",
]
