"""Graph metrics over the ecosystem networks.

Quantifies the paper's qualitative community statements: how specialized
institutions are, which tools are central to the integration plans, and how
connected the collaboration fabric is.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.errors import ValidationError

__all__ = [
    "degree_distribution",
    "specialization_index",
    "centrality_ranking",
    "density_report",
    "integration_pairs",
]


def _side_nodes(graph: nx.Graph, side: str) -> list[str]:
    nodes = [n for n, d in graph.nodes(data=True) if d.get("bipartite") == side]
    if not nodes:
        raise ValidationError(f"graph has no {side!r} nodes")
    return nodes


def degree_distribution(graph: nx.Graph, side: str) -> dict[str, int]:
    """Degree of every node on one bipartite side (insertion order)."""
    return {node: graph.degree(node) for node in _side_nodes(graph, side)}


def specialization_index(graph: nx.Graph, institution: str) -> float:
    """How specialized an institution is, in ``[0, 1]``.

    1 means all its tools sit in one direction; 0 means its tools spread
    evenly over every direction of the scheme.  Computed as one minus the
    normalized Shannon entropy of its per-direction tool weights.
    """
    if institution not in graph:
        raise ValidationError(f"unknown institution {institution!r}")
    weights = np.asarray(
        [data["weight"] for _, _, data in graph.edges(institution, data=True)],
        dtype=np.float64,
    )
    if weights.size == 0:
        raise ValidationError(f"institution {institution!r} has no tools")
    n_directions = sum(
        1 for _, d in graph.nodes(data=True) if d.get("bipartite") == "direction"
    )
    if n_directions < 2 or weights.size == 1:
        return 1.0
    p = weights / weights.sum()
    entropy = float(-(p * np.log(p)).sum())
    return 1.0 - entropy / float(np.log(n_directions))


def centrality_ranking(
    graph: nx.Graph, side: str, *, method: str = "degree"
) -> list[tuple[str, float]]:
    """Nodes of one side ranked by centrality, descending.

    Methods: ``degree`` (bipartite-normalized), ``betweenness``,
    ``eigenvector`` (on the full bipartite graph).
    """
    nodes = _side_nodes(graph, side)
    if method == "degree":
        other = [n for n in graph if n not in set(nodes)]
        denominator = max(len(other), 1)
        scores = {n: graph.degree(n) / denominator for n in nodes}
    elif method == "betweenness":
        all_scores = nx.betweenness_centrality(graph)
        scores = {n: all_scores[n] for n in nodes}
    elif method == "eigenvector":
        # Eigenvector centrality is ill-defined on disconnected graphs;
        # compute it on the largest component, zero elsewhere.
        largest = max(nx.connected_components(graph), key=len)
        component_scores = nx.eigenvector_centrality_numpy(
            graph.subgraph(largest)
        )
        scores = {n: float(component_scores.get(n, 0.0)) for n in nodes}
    else:
        raise ValidationError(f"unknown centrality method {method!r}")
    return sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))


def density_report(graph: nx.Graph) -> dict[str, float]:
    """Bipartite density, edge count, and component statistics."""
    sides: dict[str, int] = {}
    for _, data in graph.nodes(data=True):
        side = data.get("bipartite", "?")
        sides[side] = sides.get(side, 0) + 1
    if len(sides) != 2:
        raise ValidationError(
            f"expected a 2-sided bipartite graph, found sides {sorted(sides)}"
        )
    (_, n_a), (_, n_b) = sorted(sides.items())
    possible = n_a * n_b
    components = list(nx.connected_components(graph))
    return {
        "edges": float(graph.number_of_edges()),
        "possible_edges": float(possible),
        "density": graph.number_of_edges() / possible if possible else 0.0,
        "components": float(len(components)),
        "largest_component": float(max(len(c) for c in components)),
    }


def integration_pairs(
    projection: nx.Graph, *, min_weight: int = 2
) -> list[tuple[str, str, int]]:
    """Tool pairs co-selected by at least *min_weight* applications.

    The strongest candidates for the integrations the paper's Sec. 5 plans;
    sorted by weight descending, then lexicographically.
    """
    if min_weight < 1:
        raise ValidationError("min_weight must be >= 1")
    pairs = [
        (min(u, v), max(u, v), int(data["weight"]))
        for u, v, data in projection.edges(data=True)
        if data.get("weight", 0) >= min_weight
    ]
    return sorted(pairs, key=lambda t: (-t[2], t[0], t[1]))
