"""Collaboration recommendations over the ecosystem network.

The paper's conclusion argues that "collaborative initiatives are crucial
for providing direct links between highly specialized groups".  This module
operationalizes that: given the institution × direction graph, it scores
institution pairs by *complementarity* — how much of the taxonomy the pair
covers beyond what either covers alone — and recommends the pairings that
would most broaden coverage.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.errors import ValidationError

__all__ = ["PairRecommendation", "complementarity", "recommend_collaborations"]


@dataclass(frozen=True, slots=True)
class PairRecommendation:
    """One recommended institution pairing.

    Attributes
    ----------
    institutions:
        The pair, lexicographically ordered.
    joint_coverage:
        Directions the pair covers together.
    gain:
        Directions added relative to the better-covered partner.
    overlap:
        Directions both already cover (existing common ground — a small
        overlap with a large gain is the sweet spot the score rewards).
    score:
        ``gain + 0.25 * (overlap > 0)`` — prefer pairings that extend
        coverage, with a small bonus when a shared direction eases the
        collaboration.
    """

    institutions: tuple[str, str]
    joint_coverage: frozenset[str]
    gain: int
    overlap: int
    score: float


def _coverage_of(graph: nx.Graph, institution: str) -> frozenset[str]:
    if institution not in graph:
        raise ValidationError(f"unknown institution {institution!r}")
    return frozenset(graph.neighbors(institution))


def complementarity(
    graph: nx.Graph, institution_a: str, institution_b: str
) -> PairRecommendation:
    """Score one institution pair on the institution × direction graph."""
    if institution_a == institution_b:
        raise ValidationError("a pair needs two distinct institutions")
    coverage_a = _coverage_of(graph, institution_a)
    coverage_b = _coverage_of(graph, institution_b)
    joint = coverage_a | coverage_b
    gain = len(joint) - max(len(coverage_a), len(coverage_b))
    overlap = len(coverage_a & coverage_b)
    pair = tuple(sorted((institution_a, institution_b)))
    return PairRecommendation(
        institutions=pair,  # type: ignore[arg-type]
        joint_coverage=joint,
        gain=gain,
        overlap=overlap,
        score=gain + (0.25 if overlap > 0 else 0.0),
    )


def recommend_collaborations(
    graph: nx.Graph, *, top_k: int = 5
) -> list[PairRecommendation]:
    """The *top_k* most complementary institution pairs.

    Ordered by score descending, then joint coverage, then names (so the
    ranking is deterministic).  Pairs with zero gain are dropped — they
    would not broaden anyone's coverage.
    """
    if top_k < 1:
        raise ValidationError("top_k must be >= 1")
    institutions = sorted(
        node
        for node, data in graph.nodes(data=True)
        if data.get("bipartite") == "institution"
    )
    if len(institutions) < 2:
        raise ValidationError("need at least two institutions")
    recommendations = []
    for i, a in enumerate(institutions):
        for b in institutions[i + 1 :]:
            entry = complementarity(graph, a, b)
            if entry.gain > 0:
                recommendations.append(entry)
    recommendations.sort(
        key=lambda r: (-r.score, -len(r.joint_coverage), r.institutions)
    )
    return recommendations[:top_k]
