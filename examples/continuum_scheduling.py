#!/usr/bin/env python3
"""Schedule the paper's Sec. 3.1 compression pipeline on the Continuum.

Models the Software Heritage PPC workload (Permuting + Partition +
Compress) as a workflow DAG — a parallel sort stage, a grouping stage, and
a parallel compression stage, exactly the three phases Sec. 3.1 describes —
and runs it on an HPC+Cloud+Edge continuum with three schedulers:

* HEFT (earliest finish time — the classic orchestration baseline),
* the energy-aware scheduler (the PESOS idea applied to workflows),
* round-robin (the naive baseline).

It then stress-tests the best plan under execution jitter with the
discrete-event simulator, the way an orchestrator would evaluate plan
robustness before committing.

Run with::

    python examples/continuum_scheduling.py
"""

from __future__ import annotations

from repro.continuum import (
    EnergyAwareScheduler,
    HeftScheduler,
    RoundRobinScheduler,
    Task,
    Workflow,
    default_continuum,
    simulate_schedule,
)


def ppc_pipeline(n_shards: int = 8, n_blocks: int = 16) -> Workflow:
    """The Permuting + Partition + Compress workload as a DAG.

    ``n_shards`` parallel sorters feed a grouping step, which fans out into
    ``n_blocks`` parallel compressors joined by a final archive task.
    """
    tasks = [Task("ingest", work=20.0, output_size=8.0)]
    edges = []
    for shard in range(n_shards):
        key = f"sort-{shard:02d}"
        tasks.append(Task(key, work=60.0, output_size=4.0))
        edges.append(("ingest", key))
    tasks.append(Task("group", work=30.0, output_size=12.0))
    edges += [(f"sort-{s:02d}", "group") for s in range(n_shards)]
    for block in range(n_blocks):
        key = f"compress-{block:02d}"
        tasks.append(Task(key, work=90.0, output_size=1.0))
        edges.append(("group", key))
    tasks.append(Task("archive", work=10.0, output_size=0.0))
    edges += [(f"compress-{b:02d}", "archive") for b in range(n_blocks)]
    return Workflow("ppc-pipeline", tasks, edges)


def main() -> None:
    workflow = ppc_pipeline()
    continuum = default_continuum(n_hpc=2, n_cloud=4, n_edge=6, seed=1)
    print(f"Workload: {workflow.name} with {len(workflow)} tasks, "
          f"critical path {workflow.critical_path()[1]:.0f} work units")
    print(f"Continuum: {len(continuum)} nodes "
          f"(2 HPC / 4 cloud / 6 edge)")

    print(f"\n{'scheduler':<14} {'makespan':>9} {'busy J':>10} "
          f"{'total J':>10} {'carbon':>9}")
    schedules = {}
    for name, scheduler in [
        ("heft", HeftScheduler()),
        ("energy-aware", EnergyAwareScheduler(slack=2.0)),
        ("round-robin", RoundRobinScheduler()),
    ]:
        schedule = scheduler.schedule(workflow, continuum)
        schedules[name] = schedule
        print(f"{name:<14} {schedule.makespan:>8.2f}s "
              f"{schedule.busy_energy():>10.0f} "
              f"{schedule.total_energy():>10.0f} "
              f"{schedule.carbon():>9.0f}")

    # Robustness: execute the HEFT plan under increasing runtime noise.
    print("\nHEFT plan under execution jitter (lognormal sigma):")
    plan = schedules["heft"]
    for jitter in (0.0, 0.1, 0.3, 0.6):
        trace = simulate_schedule(plan, jitter=jitter, seed=13)
        print(f"  sigma={jitter:<4} realized makespan "
              f"{trace.makespan:7.2f}s (slowdown {trace.slowdown:5.3f})")

    # Where did the compute land?  Tier usage of the energy-aware plan.
    placements = schedules["energy-aware"].placements
    by_tier: dict[str, int] = {}
    for placement in placements:
        tier = placement.resource.split("-")[0]
        by_tier[tier] = by_tier.get(tier, 0) + 1
    print(f"\nEnergy-aware placement per tier: {by_tier}")

    # What does a failure-prone run cost?  Restart vs migrate recovery.
    from repro.continuum import simulate_with_failures

    print("\nUnder failures (mtbf=3s, repair=1s):")
    for policy in ("restart", "migrate"):
        failed = simulate_with_failures(
            plan, mtbf=3.0, repair_time=1.0, policy=policy, seed=21
        )
        print(f"  {policy:<8} slowdown {failed.slowdown:5.3f} "
              f"({failed.n_failures} failures, "
              f"{failed.n_migrations} migrations)")

    # Gantt charts of the plan and a jittered execution.
    from pathlib import Path

    from repro.viz import gantt_chart

    output = Path("output/scheduling")
    output.mkdir(parents=True, exist_ok=True)
    gantt_chart(plan, title="HEFT plan").save(output / "plan_gantt.svg")
    realized = simulate_schedule(plan, jitter=0.3, seed=13)
    gantt_chart(
        plan, placements=realized.placements,
        title="Realized under 30% jitter",
    ).save(output / "realized_gantt.svg")
    print(f"\nGantt charts written to {output}/")


if __name__ == "__main__":
    main()
