#!/usr/bin/env python3
"""The run ledger and regression watchdog of :mod:`repro.obs`.

Four demonstrations, each usable on its own:

1. record two full study runs into a :class:`~repro.obs.RunRegistry`
   ledger (``output/runs/ledger.ndjson``) — every :class:`RunRecord`
   carries the dataset fingerprint, config hash, per-stage timings,
   telemetry counters, and SHA-256 digests of all derived artifacts
   (Table 1/2, Figures 2-4, report sections);
2. compare the two runs with :func:`~repro.obs.compare_runs` — on
   unchanged data the digests match bit for bit and the gate passes
   (exit code 0);
3. tamper with one artifact digest to show how *result drift* is
   caught and named (exit code 3), and inflate the candidate's stage
   timings to show a *perf regression* verdict (exit code 4);
4. narrate a run with the structured NDJSON logger
   (:class:`~repro.telemetry.StructuredLogger`), whose span-correlated
   events are what ``repro runs`` reads cache/pipeline metrics from.

The same flow is available from the command line::

    repro replicate --record
    repro runs list
    repro runs compare        # exit 0 / 3 / 4 gates CI

Run with::

    python examples/run_ledger.py
"""

from __future__ import annotations

import dataclasses
import io
from pathlib import Path

from repro.obs import RunRegistry, compare_runs, digest_items
from repro.pipeline import ArtifactCache
from repro.pipeline.study import run_icsc_pipeline
from repro.telemetry import StructuredLogger, Telemetry, Tracer


def record_two_runs(registry: RunRegistry, cache_dir: Path) -> None:
    """Every pipeline run appends one NDJSON RunRecord to the ledger."""
    print("== Recording two study runs ==")
    for label in ("first", "second"):
        tracer = Tracer()
        telemetry = Telemetry(tracer=tracer)
        run_icsc_pipeline(
            cache=ArtifactCache(cache_dir),
            telemetry=telemetry,
            registry=registry,
        )
        newest = registry.last(1)[0]
        print(
            f"{label} run {newest.run_id}: "
            f"{len(newest.artifacts)} artifacts, "
            f"dataset {newest.dataset_version}"
        )
    print(f"ledger: {registry.path} ({len(registry.runs())} records)")


def compare_clean(registry: RunRegistry) -> None:
    """Unchanged data -> identical digests -> the gate passes."""
    print()
    print("== Watchdog: clean compare ==")
    baseline, candidate = registry.last(2)
    comparison = compare_runs(baseline, candidate)
    print(comparison.report())
    print(f"verdict: exit code {comparison.exit_code()}")


def compare_tampered(registry: RunRegistry) -> None:
    """Result drift and perf regressions produce distinct exit codes."""
    print()
    print("== Watchdog: injected result drift ==")
    baseline, candidate = registry.last(2)
    drifted = dataclasses.replace(
        candidate,
        artifacts={
            **candidate.artifacts,
            "table1": digest_items([["tampered row", 1]]),
        },
    )
    comparison = compare_runs(baseline, drifted)
    print(comparison.report())
    print(f"verdict: result drift -> exit code {comparison.exit_code()}")

    print()
    print("== Watchdog: injected slowdown ==")
    # The second run above was warm (all stages cached), so its timings
    # are not comparable to the cold baseline; slow down a copy of the
    # baseline itself to get an apples-to-apples perf verdict.
    slowed = dataclasses.replace(
        baseline,
        run_id=baseline.run_id + "-slow",
        stages={
            name: dataclasses.replace(
                stats, wall_s=stats.wall_s * 3.0 + 0.2
            )
            for name, stats in baseline.stages.items()
        },
    )
    comparison = compare_runs(baseline, slowed)
    print(comparison.report())
    print(f"verdict: perf regression -> exit code {comparison.exit_code()}")


def structured_log_demo(cache_dir: Path) -> None:
    """The NDJSON event stream a recorded run narrates itself with."""
    print()
    print("== Structured NDJSON log of a (cached) run ==")
    stream = io.StringIO()
    tracer = Tracer()
    telemetry = Telemetry(
        tracer=tracer,
        log=StructuredLogger(tracer=tracer, stream=stream),
    )
    run_icsc_pipeline(cache=ArtifactCache(cache_dir), telemetry=telemetry)
    lines = stream.getvalue().splitlines()
    print(f"{len(lines)} events, first three:")
    for line in lines[:3]:
        print(f"  {line}")


def main() -> None:
    output = Path("output")
    registry = RunRegistry(output / "runs")
    cache_dir = output / "ledger-cache"
    record_two_runs(registry, cache_dir)
    compare_clean(registry)
    compare_tampered(registry)
    structured_log_demo(cache_dir)


if __name__ == "__main__":
    main()
