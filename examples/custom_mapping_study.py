#!/usr/bin/env python3
"""Run a brand-new systematic mapping study end to end on your own data.

This example shows the library as a downstream user would adopt it — not
replaying the paper, but running the same methodology on a fresh corpus:

1. **Harvest** a corpus (here: a seeded synthetic library of 600 records,
   standing in for a Scopus/DBLP export) and deduplicate it.
2. **Search** it with a boolean query, as an SMS protocol prescribes.
3. **Screen** the hits with two reviewers (one strict, one lenient),
   measure their agreement (Cohen's kappa), and adjudicate conflicts.
4. **Classify** the included studies into the five workflow research
   directions with the TF-IDF centroid classifier.
5. **Analyze and report**: distribution, evenness, and a bar figure.

Run with::

    python examples/custom_mapping_study.py
"""

from __future__ import annotations

from pathlib import Path

from repro.core.classification import CentroidClassifier
from repro.core.taxonomy import workflow_directions
from repro.data.synthetic import synthetic_corpus
from repro.screening import (
    Decision,
    ScreeningSession,
    has_any_keyword,
    interpret_kappa,
    min_length,
    year_between,
)
from repro.stats.diversity import evenness_report
from repro.stats.frequency import FrequencyTable
from repro.viz import ascii_distribution, bar_chart


def main() -> None:
    scheme = workflow_directions()

    # -- 1. Harvest + dedup ------------------------------------------------
    corpus = synthetic_corpus(600, seed=7, duplicate_fraction=0.1)
    clean = corpus.deduplicate()
    print(f"Harvested {len(corpus)} records; {len(clean)} after dedup "
          f"({len(corpus) - len(clean)} duplicates merged)")

    # -- 2. Protocol search query -------------------------------------------
    hits = clean.search(
        "(workflow* OR orchestration OR scheduling OR placement) "
        'AND (HPC OR "computing continuum" OR edge OR cloud)'
    )
    print(f"Search query matched {len(hits)} candidate studies")

    # -- 3. Double screening --------------------------------------------------
    strict = (
        year_between(2012, 2023)
        & has_any_keyword(["workflow", "orchestration", "scheduling"])
        & min_length(10)
    )
    lenient = year_between(2010, 2023) & has_any_keyword(
        ["workflow", "orchestration", "scheduling", "placement", "pipeline"]
    )
    session = ScreeningSession([p.key for p in hits], ["strict", "lenient"])
    session.apply_criterion("strict", strict, hits)
    session.apply_criterion("lenient", lenient, hits)

    kappa = session.pairwise_kappa("strict", "lenient")
    print(f"Reviewer agreement: kappa={kappa:.2f} ({interpret_kappa(kappa)}); "
          f"{len(session.conflicts())} conflicts")
    for item in session.conflicts():
        session.adjudicate(item, Decision.INCLUDE)  # adjudicator is lenient
    verdicts = session.resolve()
    included = [p for p in hits if verdicts[p.key]]
    print(f"Included {len(included)} primary studies after adjudication")

    # -- 4. Classification ---------------------------------------------------
    classifier = CentroidClassifier(scheme)
    predictions = classifier.classify_many(
        [p.searchable_text() for p in included]
    )
    distribution = FrequencyTable.from_observations(
        (pred.label for pred in predictions), order=scheme.keys
    )

    # -- 5. Analysis + report ---------------------------------------------------
    names = dict(zip(scheme.keys, scheme.names))
    print("\nClassified distribution over the research directions:")
    print(ascii_distribution(distribution, label_names=names))
    evenness = evenness_report(distribution)
    print(f"\nShannon evenness: {evenness['shannon_evenness']:.3f} "
          f"(1.0 = perfectly balanced)")

    # PRISMA-style selection flow.
    from repro.reporting import StudyFlow, render_flow_diagram

    flow = StudyFlow("records identified", len(corpus))
    flow.narrow("after deduplication", len(clean), "duplicate records")
    flow.narrow("matched search query", len(hits), "off-topic")
    flow.narrow("included", len(included), "failed screening")
    print("\nSelection flow:")
    print(flow.summary())

    output = Path("output/custom_study")
    output.mkdir(parents=True, exist_ok=True)
    bar_chart(
        distribution,
        title="Primary studies per research direction",
        y_label="# studies",
    ).save(output / "distribution.svg")
    render_flow_diagram(flow).save(output / "selection_flow.svg")
    print(f"Figures written to {output}/")


if __name__ == "__main__":
    main()
