#!/usr/bin/env python3
"""Profiling with :mod:`repro.telemetry`: tracer, metrics, and reports.

Three demonstrations, each usable on its own:

1. the :class:`~repro.telemetry.Tracer` standalone — nested spans via
   the context manager and the ``@traced`` decorator, then the recorded
   tree printed with parent links and wall/CPU split;
2. the :class:`~repro.telemetry.MetricsRegistry` standalone — counters,
   a gauge high-watermark, and a histogram with numpy-backed
   percentiles;
3. the full study pipeline run under a :class:`~repro.telemetry.Telemetry`
   context: the plain-text profile report (top stages by self time,
   cache hit ratios) plus a Chrome trace written to
   ``output/profiling-trace.json`` — open it in ``chrome://tracing``
   or https://ui.perfetto.dev, or render it in the terminal with
   ``repro trace output/profiling-trace.json``.

Run with::

    python examples/pipeline_profiling.py
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.pipeline import ArtifactCache
from repro.pipeline.study import run_icsc_pipeline
from repro.telemetry import (
    MetricsRegistry,
    Telemetry,
    Tracer,
    profile_report,
    write_chrome_trace,
)


def demo_tracer() -> None:
    """Spans nest; each records wall time, CPU time, and free-form tags."""
    print("== Tracer: a hierarchical span tree ==")
    tracer = Tracer()

    @tracer.traced("screen", phase="selection")
    def screen(papers: int) -> int:
        time.sleep(0.01)
        return papers // 2

    with tracer.span("mapping-study", venue="ICSC"):
        with tracer.span("search", engine="scopus"):
            time.sleep(0.005)
        kept = screen(148)

    by_id = {s.span_id: s for s in tracer.spans()}
    for span in sorted(tracer.spans(), key=lambda s: s.start):
        parent = by_id[span.parent_id].name if span.parent_id else "-"
        print(f"  {span.name:<15} parent={parent:<15} "
              f"wall={span.duration * 1e3:6.2f} ms  "
              f"cpu={span.cpu_time * 1e3:6.2f} ms  tags={dict(span.tags)}")
    print(f"  kept {kept} papers after screening\n")


def demo_metrics() -> None:
    """Counters, a gauge watermark, and histogram percentiles."""
    print("== MetricsRegistry: counters, gauges, histograms ==")
    registry = MetricsRegistry()
    accepted = registry.counter("papers.accepted")
    inflight = registry.gauge("screeners.active")
    latency = registry.histogram(
        "screening.seconds", bounds=(0.01, 0.05, 0.1, 0.5)
    )

    for i in range(40):
        inflight.add(1)
        accepted.inc()
        latency.observe(0.004 * (i % 7 + 1))
        inflight.add(-1 if i % 3 else 0)  # simulate overlapping screeners

    summary = latency.summary()
    print(f"  papers accepted:        {accepted.value}")
    print(f"  peak active screeners:  {inflight.max:.0f}")
    print(f"  screening latency p50:  {summary['p50'] * 1e3:.1f} ms   "
          f"p99: {summary['p99'] * 1e3:.1f} ms")
    print(f"  bucket counts:          {latency.bucket_counts()}\n")


def demo_pipeline_profile() -> None:
    """Profile a real study replication and export its Chrome trace."""
    print("== Profiling the ICSC study pipeline ==")
    cache = ArtifactCache(Path("output/profiling-cache"))
    cache.clear()

    telemetry = Telemetry()
    results, run = run_icsc_pipeline(cache=cache, telemetry=telemetry)
    print(profile_report(telemetry, cache_stats=cache.stats()))

    trace_path = Path("output/profiling-trace.json")
    write_chrome_trace(telemetry, trace_path)
    print(f"\nChrome trace written to {trace_path}")
    print("  open it in chrome://tracing or https://ui.perfetto.dev,")
    print(f"  or render it inline:  repro trace {trace_path}")
    print(f"  ({len(run.executed)} stages executed, "
          f"top direction: {results.q3.top_direction})")


def main() -> None:
    demo_tracer()
    demo_metrics()
    demo_pipeline_profile()


if __name__ == "__main__":
    main()
