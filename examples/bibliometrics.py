#!/usr/bin/env python3
"""Bibliometric analysis of the paper's own reference list.

Treats the 49-entry bibliography embedded in :mod:`repro.data.bibliography`
as a mini-corpus and runs the temporal/venue analyses an SMS reports:

1. publications per year and cumulative growth (with a linear trend fit),
2. the venue landscape after normalization,
3. a classic SMS bubble chart — research direction × year — using the
   keyword classifier to place each reference,
4. leave-one-out robustness of the derived direction distribution.

Writes ``trend.svg`` and ``direction_year.svg`` to ``output/bibliometrics``.

Run with::

    python examples/bibliometrics.py
"""

from __future__ import annotations

from pathlib import Path

from repro.core.classification import KeywordClassifier
from repro.core.taxonomy import workflow_directions
from repro.corpus.trends import (
    category_year_matrix,
    cumulative_series,
    fit_linear_trend,
    yearly_series,
)
from repro.data.bibliography import paper_bibliography
from repro.viz import bubble_plot, line_chart


def main() -> None:
    corpus = paper_bibliography()
    scheme = workflow_directions()
    names = dict(zip(scheme.keys, scheme.names))
    print(f"Corpus: {len(corpus)} references, years {corpus.year_range()}")

    # 1. Temporal trend.
    series = yearly_series(corpus)
    fit = fit_linear_trend(series)
    print(f"Linear trend: {fit.slope:+.2f} publications/year "
          f"(R² = {fit.r_squared:.2f})")
    recent = yearly_series(corpus, first=2015, last=2023)
    recent_fit = fit_linear_trend(recent)
    print(f"2015-2023 trend: {recent_fit.slope:+.2f} publications/year — "
          f"{'accelerating' if recent_fit.slope > fit.slope else 'steady'}")

    # 2. Venue landscape.
    venues = corpus.by_venue()
    print("\nTop venues:")
    for venue, count in venues.ranked()[:6]:
        print(f"  {venue}: {count}")

    # 3. Direction × year bubble data via the keyword classifier.
    classifier = KeywordClassifier(scheme)

    def direction_of(publication) -> str:
        return classifier.classify(publication.searchable_text()).label

    matrix, categories, years = category_year_matrix(
        list(corpus), direction_of, scheme.keys, first=2014, last=2023
    )
    print("\nDirection x year (2014-2023):")
    header = "  ".join(f"{y % 100:02d}" for y in years)
    print(f"  {'direction':<24} {header}")
    for i, key in enumerate(categories):
        row = "  ".join(f"{v:2d}" for v in matrix[i])
        print(f"  {names[key]:<24} {row}")

    # 4. Figures on disk.
    output = Path("output/bibliometrics")
    output.mkdir(parents=True, exist_ok=True)
    line_chart(
        {"per year": series, "cumulative": cumulative_series(series)},
        title="The paper's bibliography over time",
        x_label="year", y_label="publications",
    ).save(output / "trend.svg")
    bubble_plot(
        matrix,
        [names[c] for c in categories],
        [str(y) for y in years],
        title="References per research direction and year",
    ).save(output / "direction_year.svg")
    print(f"\nFigures written to {output}/")


if __name__ == "__main__":
    main()
