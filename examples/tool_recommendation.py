#!/usr/bin/env python3
"""Recommend ICSC tools for a *new* application, the Sec. 3 survey inverted.

The paper asked providers which tools they deem valuable.  A downstream use
of this library is the reverse: given a new application's description, rank
the catalogue's 25 tools by fit.  This example:

1. builds the requirement↔capability match model on the ICSC dataset;
2. validates it against the published Table 2 (cell-level agreement);
3. embeds two *new* applications — a climate digital twin and a federated
   ML pipeline — and prints their top-5 tool recommendations with the
   per-direction requirement profile the extractor inferred.

Run with::

    python examples/tool_recommendation.py
"""

from __future__ import annotations

import numpy as np

from repro.continuum.matching import MatchModel
from repro.continuum.requirements import requirement_vector
from repro.core.entities import Application
from repro.data import icsc_ecosystem
from repro.text.vectorize import TfidfModel

NEW_APPLICATIONS = [
    Application(
        "climate-twin",
        "Digital twin of regional climate",
        "4.1",
        domain="earth science",
        description=(
            "A digital twin coupling a regional climate simulation with "
            "real-time sensor ingestion at the edge.  Needs orchestration "
            "of hybrid cloud and HPC workflows, live migration of ingestion "
            "micro-services following weather events, transparent I/O "
            "streaming between the simulation and the assimilation stages, "
            "and interactive notebooks for scientists to steer scenarios."
        ),
    ),
    Application(
        "federated-ml",
        "Cross-hospital federated learning pipeline",
        "4.2",
        domain="in-silico medicine",
        description=(
            "Training diagnostic models across hospitals without moving "
            "patient data.  Needs deployment of containerised training "
            "jobs over multiple Kubernetes clusters, parallel data mining "
            "of local records, autoML hyperparameter tuning of the global "
            "model, and stream processing of monitoring metrics on "
            "multi-core aggregation nodes."
        ),
    ),
]


def main() -> None:
    _, tools, applications, scheme = icsc_ecosystem()
    names = dict(zip(scheme.keys, scheme.names))

    # 1-2. Fit and validate on the published survey.
    model = MatchModel(tools, applications, scheme)
    validation = model.evaluate(mode="cardinality")
    print("Validation against the published Table 2:")
    print(f"  cell F1 = {validation.agreement['f1']:.3f}, "
          f"top demanded direction matches: {validation.rank_match_top}")

    # 3. Score the new applications: direction affinity + text similarity,
    #    the same blend the model uses internally.
    tool_keys = model.tool_keys
    tfidf = TfidfModel([tools[k].description for k in tool_keys])
    from repro.continuum.capabilities import capability_matrix

    capabilities, _ = capability_matrix(tools, scheme)
    cap_norm = capabilities / np.linalg.norm(capabilities, axis=1, keepdims=True)

    for app in NEW_APPLICATIONS:
        requirements = requirement_vector(app, scheme)
        profile = ", ".join(
            f"{names[key]}={requirements[i]:.2f}"
            for i, key in enumerate(scheme.keys)
        )
        direction_scores = (requirements / np.linalg.norm(requirements)) @ cap_norm.T
        text_scores = tfidf.similarity([app.description])[0]
        scores = 0.7 * direction_scores + 0.3 * text_scores

        print(f"\n{app.title} ({app.domain})")
        print(f"  inferred requirements: {profile}")
        print("  top-5 recommended tools:")
        for rank, index in enumerate(np.argsort(-scores)[:5], start=1):
            tool = tools[tool_keys[index]]
            print(f"   {rank}. {tool.name:<16} "
                  f"[{names[tool.primary_direction]}]  "
                  f"score={scores[index]:.3f}")


if __name__ == "__main__":
    main()
