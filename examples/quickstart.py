#!/usr/bin/env python3
"""Quickstart: replay the paper's full mapping study in one call.

Runs the pipeline (collect → classify → survey → analyze) on the encoded
ICSC dataset, prints every regenerated table/figure to the terminal, and
writes the SVG/CSV artifact set to ``./output/quickstart``.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from pathlib import Path

from repro import run_icsc_study, workflow_directions
from repro.core.analysis import coverage_histogram, supply_distribution
from repro.data import icsc_ecosystem, spoke1_structure
from repro.reporting import render_all_artifacts, study_report
from repro.viz import ascii_distribution, ascii_histogram, ascii_matrix


def main() -> None:
    # 1. Run the whole study: one call, deterministic under the seed.
    results = run_icsc_study(seed=2023)
    scheme = workflow_directions()
    names = dict(zip(scheme.keys, scheme.names))

    print("=" * 72)
    print("Q1 — research directions:", ", ".join(results.q1.direction_names))
    print("=" * 72)

    # 2. Figure 2: how the 25 tools distribute over the directions.
    print("\nFigure 2 — tool distribution")
    print(ascii_distribution(results.q2.distribution, label_names=names))

    # 3. Figure 3: institutional coverage.
    print("\nFigure 3 — directions covered per institution")
    print(
        ascii_histogram(
            results.q2.coverage,
            x_label="# covered research directions",
            y_label="# research institutions",
        )
    )

    # 4. Figure 4: what applications actually ask for.
    print("\nFigure 4 — selection votes")
    print(ascii_distribution(results.q3.votes, label_names=names))
    print(
        f"\nMost demanded: {names[results.q3.top_direction]}; "
        f"least demanded: {names[results.q3.bottom_direction]}"
    )

    # 5. Table 2 as a terminal grid.
    _, tools, applications, _ = icsc_ecosystem()
    print("\nTable 2 — selections")
    print(
        ascii_matrix(
            results.selection,
            row_names={t.key: t.name for t in tools},
            col_names={a.key: a.section for a in applications.ordered()},
        )
    )

    # 6. Full markdown report + SVG artifacts on disk.
    output = Path("output/quickstart")
    output.mkdir(parents=True, exist_ok=True)
    (output / "report.md").write_text(
        study_report(results, scheme), encoding="utf-8"
    )
    artifacts = render_all_artifacts(
        tools, applications, scheme, output, spoke1=spoke1_structure()
    )
    print(f"\nWrote {len(artifacts)} artifacts to {output}/")
    for name in sorted(artifacts):
        print(f"  {name}: {artifacts[name].name}")


if __name__ == "__main__":
    main()
