#!/usr/bin/env python3
"""Pipeline caching, parallelism, and crash-safe resume, demonstrated.

Runs the ICSC study through :mod:`repro.pipeline` three ways:

1. a *cold* run against an empty disk cache — every stage executes;
2. a *warm* run against the same cache — zero stages execute, the
   results come straight off the content-addressed artifacts;
3. a *resumed* run — a fresh cache is interrupted mid-pipeline (the
   survey stage "crashes"), then re-run: the stages that completed
   before the crash are skipped, only the tail re-executes.

Run with::

    python examples/pipeline_caching.py
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.errors import StageExecutionError
from repro.pipeline import (
    ArtifactCache,
    Pipeline,
    RunManifest,
    Stage,
    build_icsc_pipeline,
    run_icsc_pipeline,
)


def main() -> None:
    cache_dir = Path("output/pipeline-cache")
    cache = ArtifactCache(cache_dir)
    cache.clear()  # make the first run genuinely cold

    # 1. Cold: every stage executes and lands in the on-disk cache.
    t0 = time.perf_counter()
    results, run = run_icsc_pipeline(cache=cache)
    cold_s = time.perf_counter() - t0
    print(f"cold run:  {cold_s * 1e3:7.2f} ms  "
          f"stages executed: {', '.join(run.executed)}")

    # 2. Warm: same parameters, nothing recomputes.
    t0 = time.perf_counter()
    warm_results, warm = run_icsc_pipeline(cache=cache)
    warm_s = time.perf_counter() - t0
    print(f"warm run:  {warm_s * 1e3:7.2f} ms  "
          f"stages executed: {len(warm.executed)} "
          f"(served {len(warm.cached)} from cache, "
          f"{cold_s / max(warm_s, 1e-9):.0f}x faster)")
    assert warm_results.q3.top_direction == results.q3.top_direction

    # 3. Crash and resume: interrupt the pipeline after `collect` and
    #    `classify`, then rerun — the manifest + cache pick up from there.
    crash_cache = ArtifactCache(cache_dir / "resume-demo")
    crash_cache.clear()
    manifest = RunManifest(cache_dir / "resume-demo" / "run.json")
    pipeline = build_icsc_pipeline()

    def crashing_survey(inputs, **params):
        raise RuntimeError("simulated crash in the survey stage")

    # Same DAG, same cache keys — only the survey body is sabotaged.
    broken = Pipeline(
        [
            Stage(s.name, crashing_survey, deps=s.deps, params=s.params,
                  version=s.version) if s.name == "survey" else s
            for s in pipeline.stages.values()
        ],
        name=pipeline.name,
        version=pipeline.version,
    )
    try:
        broken.run(["analyze"], cache=crash_cache, manifest=manifest)
    except StageExecutionError:
        done = ", ".join(sorted(manifest.completed))
        print(f"interrupted run crashed at 'survey'; manifest recorded: {done}")

    resumed = pipeline.run(["analyze"], cache=crash_cache, manifest=manifest)
    print(f"resumed run executed only: {', '.join(resumed.executed)} "
          f"(skipped: {', '.join(resumed.cached)})")
    assert resumed["analyze"].q3.top_direction == "orchestration"

    print(f"\nMost demanded direction: {results.q3.top_direction}")
    print(f"Artifact cache on disk: {cache_dir}/ "
          f"({sum(1 for _ in cache.keys())} artifacts)")


if __name__ == "__main__":
    main()
