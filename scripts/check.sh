#!/usr/bin/env bash
# Run the repro test suite from ANY working directory.
#
# The seed shipped with `PYTHONPATH=src` — a relative path that stops
# resolving the moment a test (or a user) runs from a different cwd.
# This script pins PYTHONPATH to the repo's absolute src/ directory and
# passes pytest absolute paths, so it behaves identically from the repo
# root, from /tmp, or from CI's checkout directory.
#
# Usage:
#   scripts/check.sh                 # full tier-1 suite
#   scripts/check.sh --bench         # tier-1 suite + benchmarks/ suite
#   scripts/check.sh tests/test_x.py # any pytest selection (repo-relative
#                                    # or absolute paths both work)
#
# --bench appends the benchmarks/ suite (timing assertions and the
# telemetry no-op-overhead guard) to whatever selection runs.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
export PYTHONPATH="${REPO_ROOT}/src${PYTHONPATH:+:${PYTHONPATH}}"

RUN_BENCH=0
if [ "${1:-}" = "--bench" ]; then
    RUN_BENCH=1
    shift
fi

if [ "$#" -eq 0 ]; then
    set -- "${REPO_ROOT}/tests"
else
    # Resolve repo-relative selections (tests/test_x.py[::node]) so they
    # work regardless of the caller's cwd.
    args=()
    for arg in "$@"; do
        file="${arg%%::*}"
        if [ "${arg#-}" = "${arg}" ] && [ ! -e "${file}" ] \
            && [ -e "${REPO_ROOT}/${file}" ]; then
            arg="${REPO_ROOT}/${arg}"
        fi
        args+=("${arg}")
    done
    set -- "${args[@]}"
fi

if [ "${RUN_BENCH}" -eq 1 ]; then
    set -- "$@" "${REPO_ROOT}/benchmarks"
fi

exec python -m pytest "$@" --rootdir="${REPO_ROOT}" -q
