#!/usr/bin/env bash
# Run the repro test suite from ANY working directory.
#
# The seed shipped with `PYTHONPATH=src` — a relative path that stops
# resolving the moment a test (or a user) runs from a different cwd.
# This script pins PYTHONPATH to the repo's absolute src/ directory and
# passes pytest absolute paths, so it behaves identically from the repo
# root, from /tmp, or from CI's checkout directory.
#
# Usage:
#   scripts/check.sh                 # full tier-1 suite
#   scripts/check.sh --bench         # tier-1 suite + benchmarks/ suite
#   scripts/check.sh --gate          # suite, then record + regression gate
#   scripts/check.sh --smoke         # boot `repro serve` on an ephemeral
#                                    # port, hit /health, shut down clean
#   scripts/check.sh tests/test_x.py # any pytest selection (repo-relative
#                                    # or absolute paths both work)
#
# --bench appends the benchmarks/ suite (timing assertions and the
# telemetry no-op-overhead guard) to whatever selection runs; each
# benchmark module's timings are aggregated into output/BENCH_<name>.json
# (see benchmarks/conftest.py), usable as `repro runs compare --bench`
# baselines.
#
# --gate runs the selected suite, records a study run into the ledger at
# output/runs/ (`repro replicate --record`), then compares it against the
# previous ledger entries (`repro runs compare`) and exits with the
# watchdog's verdict: 0 = clean, 3 = result drift, 4 = confirmed perf
# regression.  The first recorded run has nothing to compare against and
# gates clean.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
export PYTHONPATH="${REPO_ROOT}/src${PYTHONPATH:+:${PYTHONPATH}}"

RUN_BENCH=0
RUN_GATE=0
RUN_SMOKE=0
while :; do
    case "${1:-}" in
        --bench) RUN_BENCH=1; shift ;;
        --gate)  RUN_GATE=1; shift ;;
        --smoke) RUN_SMOKE=1; shift ;;
        *) break ;;
    esac
done

if [ "${RUN_SMOKE}" -eq 1 ]; then
    # Serve smoke test: boot the HTTP service on an ephemeral port in-
    # process, hit /health, and shut down gracefully. Exercises the real
    # socket path (worker pool, keep-alive, graceful close) end to end.
    python - <<'SMOKE'
import json
import sys
import urllib.request

from repro.serve import ServerHandle, build_context

ctx = build_context(job_workers=1, queue_size=2)
with ServerHandle(ctx, workers=4) as handle:
    with urllib.request.urlopen(handle.url + "/health", timeout=10) as r:
        payload = json.loads(r.read())
assert payload["status"] == "ok", payload
print(f"serve smoke: /health ok on {handle.url}, graceful shutdown clean")
sys.exit(0)
SMOKE
    exit 0
fi

if [ "$#" -eq 0 ]; then
    set -- "${REPO_ROOT}/tests"
else
    # Resolve repo-relative selections (tests/test_x.py[::node]) so they
    # work regardless of the caller's cwd.
    args=()
    for arg in "$@"; do
        file="${arg%%::*}"
        if [ "${arg#-}" = "${arg}" ] && [ ! -e "${file}" ] \
            && [ -e "${REPO_ROOT}/${file}" ]; then
            arg="${REPO_ROOT}/${arg}"
        fi
        args+=("${arg}")
    done
    set -- "${args[@]}"
fi

if [ "${RUN_BENCH}" -eq 1 ]; then
    set -- "$@" "${REPO_ROOT}/benchmarks"
fi

if [ "${RUN_GATE}" -eq 0 ]; then
    exec python -m pytest "$@" --rootdir="${REPO_ROOT}" -q
fi

python -m pytest "$@" --rootdir="${REPO_ROOT}" -q

RUNS_DIR="${REPRO_RUNS_DIR:-${REPO_ROOT}/output/runs}"
python -m repro replicate --record --runs-dir "${RUNS_DIR}" >/dev/null

# Exit with the watchdog verdict (0 clean, 3 drift, 4 perf regression).
# With a single recorded run there is nothing to compare; that exits 0.
set +e
python -m repro runs compare --runs-dir "${RUNS_DIR}"
verdict=$?
set -e
exit "${verdict}"
