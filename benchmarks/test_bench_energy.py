"""Energy-substrate benchmark: power traces and figure-of-merit accounting.

The paper flags energy efficiency as the immature-but-promising direction;
this bench exercises the reproduction's energy substrate — platform power
traces (peak, average, EDP) and the scheduler's energy figures — and
cross-validates the trace integral against the independent per-task
accounting on every run.
"""

from __future__ import annotations

import pytest
from conftest import report

from repro.continuum.energy import energy_report, power_trace
from repro.continuum.resources import default_continuum
from repro.continuum.scheduling import EnergyAwareScheduler, HeftScheduler
from repro.continuum.workflow import random_workflow

CONTINUUM = default_continuum(n_hpc=2, n_cloud=4, n_edge=8, seed=77)
WORKFLOW = random_workflow(150, seed=77, edge_probability=0.06)


def test_bench_power_trace(benchmark):
    """Build the power trace of a 150-task schedule; verify the integral."""
    schedule = HeftScheduler().schedule(WORKFLOW, CONTINUUM)

    trace = benchmark(power_trace, schedule)
    assert trace.energy() == pytest.approx(schedule.total_energy(), rel=1e-9)
    report(
        "Energy — platform power trace (HEFT, 150 tasks)",
        [f"peak={trace.peak_power():.0f}W avg={trace.average_power():.0f}W "
         f"energy={trace.energy():.0f}J over {trace.makespan:.2f}s"],
    )


@pytest.mark.parametrize("scheduler_name", ["heft", "energy-aware"])
def test_bench_energy_report(benchmark, scheduler_name):
    """Full figure-of-merit report for each scheduler."""
    scheduler = (
        HeftScheduler()
        if scheduler_name == "heft"
        else EnergyAwareScheduler(slack=2.0)
    )
    schedule = scheduler.schedule(WORKFLOW, CONTINUUM)

    metrics = benchmark(energy_report, schedule)
    assert metrics["peak_power"] >= metrics["average_power"]
    tier_sum = sum(v for k, v in metrics.items() if k.startswith("energy_"))
    assert tier_sum == pytest.approx(schedule.busy_energy(), rel=1e-9)
    report(
        f"Energy — figures of merit ({scheduler_name})",
        [f"makespan={metrics['makespan']:.2f}s "
         f"energy={metrics['energy']:.0f}J "
         f"EDP={metrics['edp']:.0f} peak={metrics['peak_power']:.0f}W",
         f"tier split: hpc={metrics.get('energy_hpc', 0):.0f}J "
         f"cloud={metrics.get('energy_cloud', 0):.0f}J "
         f"edge={metrics.get('energy_edge', 0):.0f}J"],
    )
