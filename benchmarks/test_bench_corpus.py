"""Corpus-substrate benchmark: parsing, querying, deduplication at scale.

Exercises the harvesting machinery an SMS pipeline runs before analysis:
BibTeX parse throughput on the paper's bibliography, boolean-query filtering,
and near-duplicate detection on synthetic corpora with known injected
duplicates (reporting the recovery rate alongside the timing).
"""

from __future__ import annotations

import pytest
from conftest import report

from repro.corpus.corpus import Corpus
from repro.corpus.dedup import find_duplicates
from repro.corpus.query import Query
from repro.data.bibliography import bibliography_bibtex, paper_bibliography
from repro.data.synthetic import synthetic_corpus


def test_bench_bibtex_parse(benchmark):
    """Parse the paper's 49-entry bibliography from BibTeX."""
    text = bibliography_bibtex()
    corpus = benchmark(Corpus.from_bibtex, text)
    assert len(corpus) == 49
    assert corpus.year_range() == (2000, 2023)


def test_bench_query_engine(benchmark):
    """Run the paper-harvest query over a 2000-record synthetic corpus."""
    corpus = synthetic_corpus(2000, seed=11)
    query = Query(
        '(workflow* OR orchestration OR scheduling) AND '
        '("computing continuum" OR HPC OR edge) AND NOT checkpointing'
    )

    hits = benchmark(query.filter, list(corpus))
    assert 0 < len(hits) < len(corpus)
    report("Corpus — boolean query over 2000 records",
           [f"{len(hits)} hits"])


@pytest.mark.parametrize("n_records", [200, 1000, 4000])
def test_bench_dedup_scaling(benchmark, n_records):
    """Dedup scaling with 15% injected near-duplicates; verify recovery."""
    corpus = synthetic_corpus(
        n_records, seed=5, duplicate_fraction=0.15
    )
    records = list(corpus)

    clusters = benchmark(find_duplicates, records)
    # Ground truth: each injected duplicate's key names its source; count
    # how many ended up clustered with that source (true recall, immune to
    # coincidental template collisions among synthetic originals).
    cluster_of: dict[str, int] = {}
    for idx, cluster in enumerate(clusters):
        for pub in cluster:
            cluster_of[pub.key] = idx
    injected = [p.key for p in records if p.key.startswith("dup-")]
    recovered = sum(
        1
        for key in injected
        if cluster_of.get(key) is not None
        and cluster_of.get(key.split("-of-", 1)[1]) == cluster_of[key]
    )
    assert recovered >= 0.9 * len(injected)
    report(
        f"Corpus — dedup on {n_records} records",
        [f"injected={len(injected)} recovered={recovered} "
         f"clusters={len(clusters)}"],
    )


def test_bench_venue_distribution(benchmark):
    """Venue normalization + counting over the paper bibliography."""
    corpus = paper_bibliography()

    table = benchmark(corpus.by_venue)
    assert table.total == len(corpus)
    report(
        "Corpus — top venues of the paper's bibliography",
        [f"{venue}: {count}" for venue, count in table.ranked()[:5]],
    )
