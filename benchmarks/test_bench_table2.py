"""Table 2 benchmark: the application × tool selection matrix.

Regenerates Table 2 along both paths:

* the *published* path — selections straight from the application entities;
* the *simulated survey* path — the requirement↔capability matcher predicts
  each application's selections (DESIGN.md §3, substitution 2); the cell
  agreement and the demand-ranking shape versus the published matrix are the
  experiment's numbers.
"""

from __future__ import annotations

from conftest import report

from repro.continuum.matching import MatchModel
from repro.data.expected import TABLE2_CONTENT, TABLE2_TOTAL_SELECTIONS
from repro.tables.table2 import build_table2


def test_bench_table2_build(benchmark, tools, applications, scheme, selection):
    """Benchmark regenerating Table 2; verify all 28 published checkmarks."""
    table = benchmark(
        build_table2, tools, applications, scheme, selection=selection
    )
    assert selection.total_selections == TABLE2_TOTAL_SELECTIONS
    by_section = {a.section: a for a in applications}
    for section, names in TABLE2_CONTENT.items():
        app = by_section[section]
        assert tuple(tools[k].name for k in app.selected_tools) == names
    body = "\n".join("".join(row) for row in table.rows)
    assert body.count("✓") == TABLE2_TOTAL_SELECTIONS
    report("Table 2 — selections (28 checkmarks)", table.to_text().splitlines())


def test_bench_table2_matcher(benchmark, tools, applications, scheme):
    """Benchmark the requirement matcher simulating the provider survey."""

    def run_matcher():
        model = MatchModel(tools, applications, scheme)
        return model.evaluate(mode="cardinality")

    match = benchmark(run_matcher)
    # Shape targets: orchestration must rank first in predicted demand and
    # the cell-level agreement must be well above chance (random F1 ~ 0.11).
    assert match.rank_match_top
    assert match.agreement["f1"] >= 0.5
    assert match.predicted_votes["energy-efficiency"] <= 2
    report(
        "Table 2 (simulated survey via requirement matcher)",
        [
            f"cell agreement: accuracy={match.agreement['accuracy']:.3f} "
            f"precision={match.agreement['precision']:.3f} "
            f"recall={match.agreement['recall']:.3f} "
            f"F1={match.agreement['f1']:.3f}",
            f"predicted votes: {match.predicted_votes}",
            f"actual votes:    {match.actual_votes}",
            f"top direction matches: {match.rank_match_top}; "
            f"bottom matches: {match.rank_match_bottom}",
        ],
    )
