"""Pipeline benchmark: cold vs warm cache, serial vs parallel execution.

The :mod:`repro.pipeline` runner exists so that benchmarks, figure
regeneration, and repeated CLI calls stop recomputing the study from
scratch.  This benchmark quantifies the two headline effects:

* **cold vs warm cache** — a second `run_icsc_pipeline` with identical
  parameters must execute zero stages and run ≥ 5× faster end to end;
* **serial vs parallel** — the independent stages (classify/survey; the
  figure fan-out) produce identical results on the thread pool and the
  deterministic serial path.
"""

from __future__ import annotations

import time

from conftest import report

from repro.pipeline import ArtifactCache
from repro.pipeline.study import run_icsc_pipeline


def _timed(fn, repeats: int) -> float:
    """Best-of-*repeats* wall time of ``fn()`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_pipeline_cold_vs_warm(benchmark, tmp_path):
    """Warm-cache study runs must be ≥ 5× faster than cold-cache runs."""
    def cold_run(index: int):
        return run_icsc_pipeline(cache=ArtifactCache(tmp_path / f"c{index}"))

    cold_times = []
    for index in range(5):
        start = time.perf_counter()
        _, run = cold_run(index)
        cold_times.append(time.perf_counter() - start)
        assert len(run.executed) == 4  # genuinely cold: every stage ran
    cold = min(cold_times)

    warm_cache = ArtifactCache(tmp_path / "warm")
    run_icsc_pipeline(cache=warm_cache)  # prime
    warm = _timed(lambda: run_icsc_pipeline(cache=warm_cache), repeats=20)

    results, warm_run = benchmark(
        lambda: run_icsc_pipeline(cache=warm_cache)
    )
    assert warm_run.executed == ()  # the warm path recomputes nothing
    assert len(warm_run.cached) == 4
    assert results.q3.top_direction == "orchestration"

    speedup = cold / warm
    report(
        "Pipeline — cold vs warm artifact cache",
        [
            f"cold (best of 5):  {cold * 1e3:8.3f} ms  (4 stages executed)",
            f"warm (best of 20): {warm * 1e3:8.3f} ms  (0 stages executed)",
            f"speedup:           {speedup:8.1f}x",
        ],
    )
    assert speedup >= 5.0, (
        f"warm cache only {speedup:.1f}x faster than cold (< 5x)"
    )


def test_bench_pipeline_warm_disk_restart(benchmark, tmp_path):
    """A fresh process (new cache handle) stays warm off the disk layer."""
    run_icsc_pipeline(cache=ArtifactCache(tmp_path))  # some earlier process

    def restarted_run():
        return run_icsc_pipeline(cache=ArtifactCache(tmp_path))

    _, run = benchmark(restarted_run)
    assert run.executed == ()
    report(
        "Pipeline — warm restart from on-disk artifacts",
        [f"stages executed: {len(run.executed)}, "
         f"from cache: {len(run.cached)}"],
    )


def test_bench_pipeline_serial_vs_parallel(benchmark, tmp_path):
    """Thread-pool execution matches the deterministic serial fallback."""
    serial_results, serial_run = run_icsc_pipeline(cache=ArtifactCache())
    serial = _timed(
        lambda: run_icsc_pipeline(cache=ArtifactCache()), repeats=3
    )
    parallel = _timed(
        lambda: run_icsc_pipeline(cache=ArtifactCache(), parallel=True),
        repeats=3,
    )
    parallel_results, parallel_run = benchmark(
        lambda: run_icsc_pipeline(cache=ArtifactCache(), parallel=True)
    )
    assert set(parallel_run.executed) == set(serial_run.executed)
    assert (
        parallel_results.q2.distribution.to_dict()
        == serial_results.q2.distribution.to_dict()
    )
    assert (
        parallel_results.comparison.permutation.p_value
        == serial_results.comparison.permutation.p_value
    )
    report(
        "Pipeline — serial vs parallel stage execution",
        [
            f"serial:   {serial * 1e3:8.3f} ms",
            f"parallel: {parallel * 1e3:8.3f} ms "
            "(classify ∥ survey; identical results)",
        ],
    )
