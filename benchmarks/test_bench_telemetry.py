"""Telemetry benchmark: the no-op path must be free, the real path cheap.

Telemetry is wired inline into ``Pipeline.run``'s hot path, so the
disabled default has to cost (approximately) nothing.  Two guards:

* **no-op overhead** — the exact null-telemetry call sequence a warm
  `Pipeline.run` performs (one run span, four cached-stage spans, the
  counter/gauge/histogram touches) is timed directly and must account
  for < 5% of a measured warm-cache run — i.e. the PR-1 warm path is
  preserved within noise;
* **enabled capture** — recording telemetry on a warm run must still
  produce the full span/metric picture, and its cost is reported for
  the record.

The measured numbers land in ``output/BENCH_telemetry.json`` alongside
the ``report()`` block the other benchmarks print.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import report

from repro.pipeline import ArtifactCache
from repro.pipeline.study import run_icsc_pipeline
from repro.telemetry import NULL_TELEMETRY, Telemetry

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_SUMMARY = REPO_ROOT / "output" / "BENCH_telemetry.json"

#: The study DAG's stage names (what a warm run touches).
STAGES = ("collect", "classify", "survey", "analyze")


def _timed(fn, repeats: int) -> float:
    """Best-of-*repeats* wall time of ``fn()`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _null_instrumentation_once() -> None:
    """Replay the telemetry calls one warm `Pipeline.run` makes, on the
    shared no-op objects — the exact per-run cost of `telemetry=None`."""
    tel = NULL_TELEMETRY
    if tel.enabled:  # the bind-collaborators guard
        raise AssertionError
    metrics = tel.metrics
    metrics.histogram("pipeline.stage_seconds")
    metrics.counter("pipeline.stages_executed")
    cached = metrics.counter("pipeline.stages_cached")
    metrics.gauge("pipeline.parallelism")
    log = tel.log  # the structured-logger lookup the runner performs
    with tel.tracer.span("pipeline.run", pipeline="icsc-study"):
        for name in STAGES:
            if tel.enabled:  # cached-stage spans are gated off entirely
                cached.inc()
        # pipeline.plan / pipeline.finish log events are enabled-gated.
        for _ in range(2):
            if tel.enabled:
                log.info("pipeline.plan")


def test_bench_telemetry_noop_overhead(benchmark, tmp_path):
    """Disabled telemetry must add < 5% to a warm-cache study run."""
    cache = ArtifactCache(tmp_path / "warm")
    run_icsc_pipeline(cache=cache)  # prime

    warm = _timed(lambda: run_icsc_pipeline(cache=cache), repeats=20)
    _, run = benchmark(lambda: run_icsc_pipeline(cache=cache))
    assert run.executed == ()  # genuinely warm

    # Direct measurement of the no-op instrumentation a warm run pays.
    # Best-of-chunks, like the warm timing, so scheduler noise cannot
    # inflate the numerator while deflating the denominator.
    chunk = 200
    noop_per_run = _timed(
        lambda: [_null_instrumentation_once() for _ in range(chunk)],
        repeats=10,
    ) / chunk

    overhead = noop_per_run / warm
    report(
        "Telemetry — no-op overhead on a warm-cache run",
        [
            f"warm run (best of 20):     {warm * 1e3:9.4f} ms",
            f"no-op telemetry calls:     {noop_per_run * 1e6:9.3f} µs/run",
            f"overhead:                  {overhead * 100:9.3f} %  (< 5% required)",
        ],
    )
    assert overhead < 0.05, (
        f"no-op telemetry costs {overhead * 100:.2f}% of a warm run (>= 5%)"
    )

    BENCH_SUMMARY.parent.mkdir(parents=True, exist_ok=True)
    BENCH_SUMMARY.write_text(
        json.dumps(
            {
                "benchmark": "telemetry_noop_overhead",
                "warm_run_ms": round(warm * 1e3, 4),
                "noop_telemetry_us_per_run": round(noop_per_run * 1e6, 3),
                "overhead_fraction": round(overhead, 6),
                "threshold_fraction": 0.05,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )


def test_bench_telemetry_enabled_capture(benchmark, tmp_path):
    """Enabled telemetry records the full picture on a warm run."""
    cache = ArtifactCache(tmp_path / "warm")
    run_icsc_pipeline(cache=cache)  # prime

    plain = _timed(lambda: run_icsc_pipeline(cache=cache), repeats=10)

    def traced_run():
        tel = Telemetry()
        _, run = run_icsc_pipeline(cache=cache, telemetry=tel)
        return tel, run

    traced = _timed(traced_run, repeats=10)
    tel, run = benchmark(traced_run)

    assert run.executed == ()
    spans = tel.tracer.spans()
    assert {s.name for s in spans} == {
        "pipeline.run", *(f"stage:{name}" for name in STAGES)
    }
    snapshot = tel.metrics.snapshot()
    assert snapshot["pipeline.stages_cached"]["value"] == len(STAGES)
    assert snapshot["pipeline.stages_executed"]["value"] == 0

    report(
        "Telemetry — enabled capture on a warm-cache run",
        [
            f"warm, telemetry off:  {plain * 1e3:9.4f} ms",
            f"warm, telemetry on:   {traced * 1e3:9.4f} ms "
            f"({len(spans)} spans, {len(snapshot)} metrics)",
        ],
    )
