"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one paper artifact (table/figure), asserts the
published values, and reports the rows/series the paper shows.

At session end, every timing measured through the ``benchmark`` fixture
is aggregated into one ``output/BENCH_<suite>.json`` per benchmark module
(``test_bench_corpus.py`` → ``BENCH_corpus.json``), each carrying a
``results`` mapping of benchmark name → timing stats.  Those files are
the baseline source for ``repro runs compare --bench``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.selection import SelectionMatrix
from repro.data.icsc import icsc_ecosystem

REPO_ROOT = Path(__file__).resolve().parent.parent


def report(title: str, lines: list[str]) -> None:
    """Print a regenerated artifact block (visible with ``pytest -s``)."""
    banner = "=" * max(len(title), 20)
    print(f"\n{banner}\n{title}\n{banner}")
    for line in lines:
        print(line)


@pytest.fixture(scope="session")
def ecosystem():
    return icsc_ecosystem()


@pytest.fixture(scope="session")
def tools(ecosystem):
    return ecosystem[1]


@pytest.fixture(scope="session")
def applications(ecosystem):
    return ecosystem[2]


@pytest.fixture(scope="session")
def scheme(ecosystem):
    return ecosystem[3]


@pytest.fixture(scope="session")
def selection(tools, applications, scheme):
    return SelectionMatrix.from_catalogs(tools, applications, scheme)


def pytest_sessionfinish(session, exitstatus) -> None:
    """Aggregate measured benchmarks into per-suite BENCH_<name>.json files.

    A file the suite already wrote by hand (BENCH_telemetry.json's
    overhead summary) is preserved under a ``summary`` key next to the
    aggregated ``results`` mapping.
    """
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not bench_session.benchmarks:
        return
    suites: dict[str, dict[str, dict[str, float | int]]] = {}
    for bench in bench_session.benchmarks:
        if getattr(bench, "has_error", False):
            continue
        module_path, _, test_id = bench.fullname.partition("::")
        module = Path(module_path).stem
        if not module.startswith("test_bench_"):
            continue
        suite = module[len("test_bench_"):]
        stats = bench.stats
        suites.setdefault(suite, {})[test_id] = {
            "min_s": stats.min,
            "mean_s": stats.mean,
            "median_s": stats.median,
            "stddev_s": stats.stddev,
            "rounds": stats.rounds,
        }
    output_dir = REPO_ROOT / "output"
    output_dir.mkdir(parents=True, exist_ok=True)
    for suite, results in sorted(suites.items()):
        path = output_dir / f"BENCH_{suite}.json"
        payload: dict = {"suite": suite, "results": results}
        if path.exists():
            try:
                existing = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                existing = None
            if isinstance(existing, dict):
                if "results" in existing:
                    summary = existing.get("summary")
                else:
                    summary = existing
                if summary is not None:
                    payload["summary"] = summary
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
