"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one paper artifact (table/figure), asserts the
published values, and reports the rows/series the paper shows.
"""

from __future__ import annotations

import pytest

from repro.core.selection import SelectionMatrix
from repro.data.icsc import icsc_ecosystem


def report(title: str, lines: list[str]) -> None:
    """Print a regenerated artifact block (visible with ``pytest -s``)."""
    banner = "=" * max(len(title), 20)
    print(f"\n{banner}\n{title}\n{banner}")
    for line in lines:
        print(line)


@pytest.fixture(scope="session")
def ecosystem():
    return icsc_ecosystem()


@pytest.fixture(scope="session")
def tools(ecosystem):
    return ecosystem[1]


@pytest.fixture(scope="session")
def applications(ecosystem):
    return ecosystem[2]


@pytest.fixture(scope="session")
def scheme(ecosystem):
    return ecosystem[3]


@pytest.fixture(scope="session")
def selection(tools, applications, scheme):
    return SelectionMatrix.from_catalogs(tools, applications, scheme)
