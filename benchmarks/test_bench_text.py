"""Text-substrate benchmark: the NLP kernels under every simulated step.

TF-IDF model construction and batch similarity, Porter stemming throughput,
and the vectorized Levenshtein — the hot paths behind the classifiers, the
matcher, and deduplication.
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import report

from repro.data.synthetic import synthetic_corpus
from repro.text.similarity import levenshtein
from repro.text.stem import porter_stem
from repro.text.tokenize import tokenize
from repro.text.vectorize import TfidfModel

_CORPUS = [p.searchable_text() for p in synthetic_corpus(2000, seed=21)]


def test_bench_tfidf_fit(benchmark):
    """Fit TF-IDF over 2000 synthetic abstracts."""
    model = benchmark(TfidfModel, _CORPUS)
    assert model.n_documents == 2000
    assert model.matrix.shape[1] > 50


def test_bench_tfidf_similarity(benchmark):
    """Batch cosine similarity of 100 queries against 2000 documents."""
    model = TfidfModel(_CORPUS)
    queries = _CORPUS[:100]

    sims = benchmark(model.similarity, queries)
    assert sims.shape == (100, 2000)
    # Self-similarity dominates each row.
    assert np.allclose(sims[np.arange(100), np.arange(100)],
                       sims.max(axis=1))


def test_bench_porter_stemmer(benchmark):
    """Stem the full vocabulary of the 2000-document corpus."""
    vocabulary = sorted({
        token for text in _CORPUS for token in tokenize(text)
    })

    def stem_all():
        return [porter_stem(word) for word in vocabulary]

    stems = benchmark(stem_all)
    assert len(stems) == len(vocabulary)
    report("Text — stemmer throughput",
           [f"{len(vocabulary)} distinct tokens per round"])


@pytest.mark.parametrize("length", [30, 300])
def test_bench_levenshtein(benchmark, length):
    """Vectorized edit distance on strings of increasing length."""
    rng = np.random.default_rng(5)
    alphabet = np.array(list("abcdefgh"))
    a = "".join(rng.choice(alphabet, size=length))
    b = "".join(rng.choice(alphabet, size=length))

    distance = benchmark(levenshtein, a, b)
    assert 0 < distance <= length
