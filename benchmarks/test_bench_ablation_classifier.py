"""Ablation benchmark: classifier variants for the Table 1 classification.

DESIGN.md calls out the choice of automatic classifier (keyword vs TF-IDF
centroid vs ensemble) used to simulate the paper's manual classification.
This ablation measures accuracy of each variant on the 25 published tools
and throughput on a 500-tool synthetic ecosystem.
"""

from __future__ import annotations

import pytest
from conftest import report

from repro.core.classification import (
    CentroidClassifier,
    EnsembleClassifier,
    KeywordClassifier,
    evaluate_classifier,
)
from repro.data.synthetic import synthetic_ecosystem


def _make(variant, scheme):
    if variant == "keyword":
        return KeywordClassifier(scheme)
    if variant == "centroid":
        return CentroidClassifier(scheme)
    return EnsembleClassifier(
        [KeywordClassifier(scheme), CentroidClassifier(scheme)]
    )


@pytest.mark.parametrize("variant", ["keyword", "centroid", "ensemble"])
def test_bench_classifier_accuracy_icsc(benchmark, tools, scheme, variant):
    """Accuracy of each classifier variant against the published Table 1."""
    descriptions = [t.description for t in tools]
    gold = [t.primary_direction for t in tools]
    classifier = _make(variant, scheme)

    predictions = benchmark(classifier.classify_many, descriptions)
    evaluation = evaluate_classifier(predictions, gold, scheme)
    # All variants must beat 0.85; the keyword variant is exact.
    floor = 1.0 if variant == "keyword" else 0.85
    assert evaluation.accuracy >= floor
    report(
        f"Classifier ablation ({variant}) on the 25 ICSC tools",
        [f"accuracy={evaluation.accuracy:.3f} macroF1={evaluation.macro_f1():.3f} "
         f"misses={len(evaluation.misclassified)}"],
    )


@pytest.mark.parametrize("variant", ["keyword", "centroid"])
def test_bench_classifier_scale(benchmark, variant):
    """Throughput of each variant on a 500-tool synthetic ecosystem."""
    _, tools, _, scheme = synthetic_ecosystem(
        n_institutions=20, n_tools=500, n_applications=10, seed=42
    )
    descriptions = [t.description for t in tools]
    gold = [t.primary_direction for t in tools]
    classifier = _make(variant, scheme)

    predictions = benchmark(classifier.classify_many, descriptions)
    evaluation = evaluate_classifier(predictions, gold, scheme)
    assert evaluation.accuracy > 0.6  # synthetic text is noisier than real
