"""Fault-tolerance benchmark: plans on unreliable resources.

The paper's Sec. 4 flags fault tolerance as an uncovered direction of the
surveyed ecosystem; this bench exercises the reproduction's substrate for
it — failure injection with restart vs migration recovery — sweeping the
failure rate and reporting the makespan inflation each policy pays.
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import report

from repro.continuum.failures import simulate_with_failures
from repro.continuum.resources import default_continuum
from repro.continuum.scheduling import HeftScheduler
from repro.continuum.workflow import random_workflow

WORKFLOW = random_workflow(80, seed=55, output_range=(0.0, 0.2))
CONTINUUM = default_continuum(n_hpc=2, n_cloud=4, n_edge=6, seed=55)
SCHEDULE = HeftScheduler().schedule(WORKFLOW, CONTINUUM)


@pytest.mark.parametrize("policy", ["restart", "migrate"])
def test_bench_failure_recovery(benchmark, policy):
    """One failure-laden execution per round (mtbf = 3 s, repair = 1 s)."""

    def run():
        return simulate_with_failures(
            SCHEDULE, mtbf=3.0, repair_time=1.0, policy=policy, seed=11
        )

    trace = benchmark(run)
    assert len(trace.placements) == len(WORKFLOW)
    report(
        f"Fault tolerance — {policy} (mtbf=3s, repair=1s)",
        [f"slowdown={trace.slowdown:.3f} failures={trace.n_failures} "
         f"migrations={trace.n_migrations} lost={trace.lost_work:.2f}s"],
    )


def test_bench_failure_rate_sweep(benchmark):
    """Mean slowdown of both policies across failure rates (10 seeds each)."""

    def sweep():
        rows = []
        for mtbf in (20.0, 5.0, 2.0):
            means = {}
            for policy in ("restart", "migrate"):
                makespans = [
                    simulate_with_failures(
                        SCHEDULE, mtbf=mtbf, repair_time=1.5,
                        policy=policy, seed=seed,
                    ).slowdown
                    for seed in range(10)
                ]
                means[policy] = float(np.mean(makespans))
            rows.append((mtbf, means))
        return rows

    rows = benchmark.pedantic(sweep, rounds=2, iterations=1)
    # Slowdown grows as failures become more frequent.
    restart_series = [means["restart"] for _, means in rows]
    assert restart_series == sorted(restart_series)
    report(
        "Fault tolerance — failure-rate sweep (mean slowdown, 10 seeds)",
        [f"mtbf={mtbf:>5}: restart={means['restart']:.3f} "
         f"migrate={means['migrate']:.3f}"
         for mtbf, means in rows],
    )
