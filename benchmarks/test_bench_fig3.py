"""Figure 3 benchmark: research directions covered per institution.

Regenerates the Fig. 3 histogram from the raw catalogue, asserts the
reconstruction constraints from the paper (9 institutions, more than half
covering a single direction, none covering all five) and the reconstructed
bars (5, 2, 1, 1, 0), and benchmarks the analysis + SVG render.
"""

from __future__ import annotations

from conftest import report

from repro.core.analysis import coverage_histogram
from repro.data.expected import FIG3_HISTOGRAM, N_TOOL_INSTITUTIONS
from repro.viz.ascii import ascii_histogram
from repro.viz.bars import bar_chart


def test_bench_fig3_histogram(benchmark, tools, scheme):
    """Benchmark the Fig. 3 analysis and verify the published constraints."""
    table = benchmark(coverage_histogram, tools, scheme)
    assert table.to_dict() == FIG3_HISTOGRAM
    assert table.total == N_TOOL_INSTITUTIONS
    assert table[1] * 2 > table.total          # "more than half ... single topic"
    assert table[len(scheme)] == 0             # "no institutions span the whole set"
    report(
        "Figure 3 — directions covered per institution (bars 5,2,1,1,0)",
        ascii_histogram(
            table,
            x_label="# covered research directions",
            y_label="# research institutions",
        ).splitlines(),
    )


def test_bench_fig3_render(benchmark, tools, scheme):
    """Benchmark rendering the Fig. 3 histogram to SVG."""
    table = coverage_histogram(tools, scheme)

    def render() -> str:
        return bar_chart(
            table,
            title="Research directions covered per institution",
            x_label="# covered research directions",
            y_label="# research institutions",
        ).render()

    svg = benchmark(render)
    assert svg.startswith("<svg")
    assert svg.count("<rect") >= 4  # one bar per non-zero bin + background
