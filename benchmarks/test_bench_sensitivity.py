"""Robustness benchmark: do the paper's findings survive perturbation?

Leave-one-out analyses over the dataset (an extension beyond the paper's
own evaluation): the Fig. 4 demand ranking must survive the removal of any
single application, and the analysis must surface the one genuine fragility
— the Fig. 2 supply minimum is a tie between interactive computing and
energy efficiency that any energy-tool removal breaks.
"""

from __future__ import annotations

from conftest import report

from repro.core.keywording import adjusted_rand_index, induce_scheme
from repro.core.sensitivity import (
    jackknife_shares,
    leave_one_application_out,
    leave_one_tool_out,
)


def test_bench_loo_applications(benchmark, tools, applications, scheme):
    """Leave-one-application-out: the demand ranking is fully robust."""
    loo = benchmark(leave_one_application_out, tools, applications, scheme)
    assert loo.top_stable and loo.bottom_stable
    assert loo.breaking_cases == ()
    report(
        "Sensitivity — leave-one-application-out (Fig. 4)",
        [f"top/bottom stable under all {len(loo.perturbed)} removals; "
         f"max share swing {loo.max_share_swing:.3f}"],
    )


def test_bench_loo_tools(benchmark, tools, scheme):
    """Leave-one-tool-out: surfaces the IC/EE supply tie."""
    loo = benchmark(leave_one_tool_out, tools, scheme)
    assert loo.top_stable
    assert not loo.bottom_stable  # the 3-3 tie breaks
    assert len(loo.breaking_cases) == 3
    report(
        "Sensitivity — leave-one-tool-out (Fig. 2)",
        [f"top stable; bottom tie broken by {sorted(loo.breaking_cases)}"],
    )


def test_bench_jackknife(benchmark, tools, applications, scheme):
    """Jackknife standard errors of the demand shares."""
    jk = benchmark(jackknife_shares, tools, applications, scheme)
    orch_share, orch_se = jk["orchestration"]
    energy_share, energy_se = jk["energy-efficiency"]
    assert orch_share - orch_se > energy_share + energy_se
    report(
        "Sensitivity — jackknife demand shares",
        [f"{key}: {share:.3f} ± {se:.3f}" for key, (share, se) in jk.items()],
    )


def test_bench_scheme_induction(benchmark, tools, scheme):
    """Unsupervised scheme induction on the 25 real descriptions.

    The weak agreement (ARI ≈ 0.1-0.3 vs the published taxonomy) is itself
    the finding: 25 short descriptions carry too little signal for
    clustering, empirically justifying the paper's manual classification.
    """
    documents = [t.description for t in tools]
    gold = [scheme.index(t.primary_direction) for t in tools]

    def induce():
        _, labels = induce_scheme(documents, 5, seed=0)
        return labels

    labels = benchmark(induce)
    ari = adjusted_rand_index(gold, labels)
    assert 0.0 < ari < 0.6
    report(
        "Keywording — unsupervised scheme induction (25 real tools)",
        [f"ARI vs published taxonomy: {ari:.3f} "
         "(weak → manual classification justified; "
         "0.85 on 100 synthetic tools, see tests)"],
    )
