"""Monte-Carlo engine benchmark: batched vs naive, parallel determinism.

The sweep engine (:mod:`repro.continuum.montecarlo`) exists so thousands
of replications stop paying the one-shot simulators' per-call setup.
This bench pins the acceptance criteria:

* **batched vs naive** — 1000 single-process replications through the
  precomputed :class:`SimulationContext` must run ≥ 3× faster than the
  same 1000 replications through `simulate_with_failures`, on
  bit-identical per-replication results;
* **parallel == serial** — a multi-worker sweep must be bit-identical to
  the serial fallback for the same seed;
* **warm cache** — re-running an identical sweep spec against a primed
  `ArtifactCache` must execute zero simulations.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import report

from repro.continuum import (
    HeftScheduler,
    SimulationContext,
    SweepSpec,
    default_continuum,
    random_workflow,
    replicate_once,
    run_sweep,
    simulate_with_failures,
)
from repro.pipeline import ArtifactCache

WORKFLOW = random_workflow(80, seed=55, output_range=(0.0, 0.2))
CONTINUUM = default_continuum(n_hpc=2, n_cloud=4, n_edge=6, seed=55)
SCHEDULE = HeftScheduler().schedule(WORKFLOW, CONTINUUM)

REPLICATIONS = 1000
MTBF = 20.0
REPAIR = 1.0


def _rng(rep: int) -> np.random.Generator:
    return np.random.default_rng(np.random.SeedSequence(55, spawn_key=(rep,)))


def test_bench_batched_vs_naive(benchmark):
    """Acceptance: the batched engine is ≥ 3× faster than a naive loop
    over `simulate_with_failures` at 1000 replications, one process."""

    def naive():
        return [
            simulate_with_failures(
                SCHEDULE, mtbf=MTBF, repair_time=REPAIR, rng=_rng(rep)
            ).makespan
            for rep in range(REPLICATIONS)
        ]

    def batched():
        context = SimulationContext(SCHEDULE)
        return [
            replicate_once(
                context, mtbf=MTBF, repair_time=REPAIR, rng=_rng(rep)
            ).makespan
            for rep in range(REPLICATIONS)
        ]

    start = time.perf_counter()
    naive_makespans = naive()
    naive_s = time.perf_counter() - start

    batched_makespans = benchmark.pedantic(batched, rounds=3, iterations=1)
    start = time.perf_counter()
    batched()
    batched_s = time.perf_counter() - start

    # Same replications, same draws: the speedup is measured on
    # bit-identical results, not on a shortcut.
    assert batched_makespans == naive_makespans

    speedup = naive_s / batched_s
    report(
        f"Monte-Carlo — batched vs naive ({REPLICATIONS} replications, "
        "1 process)",
        [
            f"naive loop:   {naive_s * 1e3:9.1f} ms "
            f"({naive_s / REPLICATIONS * 1e6:7.1f} µs/replication)",
            f"batched:      {batched_s * 1e3:9.1f} ms "
            f"({batched_s / REPLICATIONS * 1e6:7.1f} µs/replication)",
            f"speedup:      {speedup:9.2f}x (bit-identical makespans)",
        ],
    )
    assert speedup >= 3.0, (
        f"batched engine only {speedup:.2f}x faster than naive (< 3x)"
    )


def test_bench_parallel_bit_identical(benchmark):
    """Acceptance: parallel (workers>1) and serial sweeps are
    bit-identical for the same seed."""
    spec = SweepSpec(
        workflows=(WORKFLOW,),
        continuum=CONTINUUM,
        schedulers=("heft", "round_robin"),
        mtbfs=(MTBF,),
        jitters=(0.0, 0.1),
        replications=50,
        seed=55,
        chunk_size=16,
    )
    serial = run_sweep(spec, workers=0)
    start = time.perf_counter()
    run_sweep(spec, workers=0)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = benchmark.pedantic(
        lambda: run_sweep(spec, workers=2), rounds=1, iterations=1
    )
    parallel_s = time.perf_counter() - start

    assert parallel.to_dict()["cells"] == serial.to_dict()["cells"]
    report(
        "Monte-Carlo — parallel vs serial sweep "
        f"({len(spec.cells())} cells × {spec.replications} replications)",
        [
            f"serial:    {serial_s * 1e3:9.1f} ms",
            f"2 workers: {parallel_s * 1e3:9.1f} ms "
            "(bit-identical cell statistics)",
        ],
    )


def test_bench_warm_cache_zero_simulations(benchmark, tmp_path):
    """Acceptance: a warm-cache re-run of an identical sweep spec
    executes zero simulations."""
    spec = SweepSpec(
        workflows=(WORKFLOW,),
        continuum=CONTINUUM,
        schedulers=("heft", "round_robin"),
        mtbfs=(MTBF,),
        jitters=(0.0, 0.1),
        replications=100,
        seed=55,
    )
    cache = ArtifactCache(tmp_path)

    start = time.perf_counter()
    cold = run_sweep(spec, cache=cache)
    cold_s = time.perf_counter() - start
    assert cold.n_replications_run == len(spec.cells()) * spec.replications

    warm = benchmark(lambda: run_sweep(spec, cache=cache))
    start = time.perf_counter()
    run_sweep(spec, cache=cache)
    warm_s = time.perf_counter() - start

    assert warm.n_replications_run == 0
    assert warm.computed == ()
    assert len(warm.cached) == len(spec.cells())
    assert warm.to_dict()["cells"] == cold.to_dict()["cells"]
    report(
        "Monte-Carlo — warm-cache re-run "
        f"({len(spec.cells())} cells × {spec.replications} replications)",
        [
            f"cold: {cold_s * 1e3:9.1f} ms "
            f"({cold.n_replications_run} simulations)",
            f"warm: {warm_s * 1e3:9.1f} ms (0 simulations, "
            f"{len(warm.cached)} cells from cache)",
            f"speedup: {cold_s / warm_s:6.1f}x",
        ],
    )


def test_bench_adaptive_sequential_stopping(benchmark):
    """Acceptance: on the EXPERIMENTS.md reference grid (3 schedulers ×
    3 MTBFs, 200-replication cap) adaptive sequential stopping executes
    ≤ 50% of the fixed-replication simulation count while every cell
    meets ``target_ci``, on cells bit-identical to the serial run."""
    import math

    from repro.continuum.montecarlo import parse_grid
    from repro.data import synthetic_workflows

    base = dict(
        workflows=synthetic_workflows(1, seed=0),
        continuum=default_continuum(seed=0),
        seed=0,
        chunk_size=20,
        **parse_grid("scheduler=heft,energy,round_robin;mtbf=20,50,200"),
    )
    fixed = SweepSpec(replications=200, **base)
    adaptive = SweepSpec(replications=200, target_ci=0.02, **base)

    start = time.perf_counter()
    fixed_result = run_sweep(fixed, workers=2)
    fixed_s = time.perf_counter() - start

    result = benchmark.pedantic(
        lambda: run_sweep(adaptive, workers=2), rounds=1, iterations=1
    )
    start = time.perf_counter()
    run_sweep(adaptive, workers=2)
    adaptive_s = time.perf_counter() - start

    assert fixed_result.n_replications_run == 1800
    assert result.n_replications_budget == 1800
    fraction = result.n_replications_run / result.n_replications_budget
    # Every cell met the stopping rule (or ran to the cap).
    met = 0
    for stats in result.cells:
        summary = stats.metrics[adaptive.primary_metric]
        half = 1.96 * summary.std / math.sqrt(summary.count)
        if stats.replications < adaptive.replication_cap:
            assert half <= adaptive.target_ci * abs(summary.mean) * 1.0001
            met += 1
    # Bit-identical to the serial adaptive run.
    serial = run_sweep(adaptive, workers=0)
    assert serial.to_dict() == result.to_dict()

    report(
        "Monte-Carlo — adaptive sequential stopping "
        "(reference grid: 3 schedulers × 3 MTBFs, cap 200)",
        [
            f"fixed:    {fixed_s * 1e3:9.1f} ms "
            f"({fixed_result.n_replications_run} simulations)",
            f"adaptive: {adaptive_s * 1e3:9.1f} ms "
            f"({result.n_replications_run} simulations, "
            f"{result.n_replications_saved} saved, "
            f"{fraction:.1%} of budget)",
            f"cells stopped early: {met}/{len(result.cells)} "
            "(all met target_ci=0.02; bit-identical at any worker count)",
        ],
    )
    assert fraction <= 0.5, (
        f"adaptive sweep ran {fraction:.1%} of the fixed budget (> 50%)"
    )


def test_bench_quantile_sketch_merge_exact(benchmark):
    """Acceptance: merging per-shard `QuantileSketch` states is exact —
    the merged sketch equals the single-stream sketch — and quantile
    estimates stay within the alpha error bound at 100k samples."""
    from repro.continuum import QuantileSketch

    ALPHA = 0.01
    N = 100_000
    SHARDS = 8
    rng = np.random.default_rng(55)
    values = rng.lognormal(1.0, 1.0, size=N)

    def build_and_merge():
        whole = QuantileSketch(ALPHA)
        shards = [QuantileSketch(ALPHA) for _ in range(SHARDS)]
        for index, value in enumerate(values):
            whole.add(float(value))
            shards[index % SHARDS].add(float(value))
        merged = shards[0]
        for shard in shards[1:]:
            merged.merge(shard)
        return whole, merged

    start = time.perf_counter()
    whole, merged = build_and_merge()
    build_s = time.perf_counter() - start
    benchmark.pedantic(
        lambda: merged.copy().merge(whole), rounds=3, iterations=1
    )

    assert merged == whole  # exact: not approximately equal
    worst = 0.0
    for q in (0.01, 0.1, 0.5, 0.9, 0.99, 0.999):
        exact = float(np.quantile(values, q))
        error = abs(merged.quantile(q) - exact) / exact
        worst = max(worst, error)
        assert error <= 2 * ALPHA
    report(
        f"Monte-Carlo — mergeable quantile sketch ({N} samples, "
        f"{SHARDS} shards, alpha={ALPHA})",
        [
            f"build+merge: {build_s * 1e3:9.1f} ms "
            f"({len(merged.to_dict()['pos'])} buckets)",
            f"merged == single-stream: exact "
            f"(worst quantile error {worst:.4%} ≤ {2 * ALPHA:.0%} bound)",
        ],
    )
