"""Figure 1 benchmark: the Spoke 1 organizational structure diagram.

Regenerates the Fig. 1 big-picture diagram from the encoded structure data,
asserts the published facts (5 flagships, 2 living labs, 21.5M€ envelope,
FL3 coordinated by UNIPI), and benchmarks the SVG render.
"""

from __future__ import annotations

from conftest import report

from repro.data.icsc import spoke1_structure
from repro.reporting.figures import render_spoke1_figure


def test_bench_fig1_structure(benchmark):
    """Benchmark the Fig. 1 render and verify the structure facts."""
    structure = spoke1_structure()
    assert len(structure["flagships"]) == 5
    assert len(structure["living_labs"]) == 2
    assert structure["financial_envelope_meur"] == 21.5
    fl3 = next(f for f in structure["flagships"] if f["key"] == "fl3")
    assert fl3["coordinator"] == "unipi"
    assert len(structure["industries"]) == 10

    svg = benchmark(lambda: render_spoke1_figure(structure).render())
    assert svg.startswith("<svg")
    for flagship in structure["flagships"]:
        assert flagship["key"].upper() in svg
    report(
        "Figure 1 — Spoke 1 structure",
        [
            f"{f['key'].upper()}: {f['title']} (coord. "
            f"{f['coordinator'].upper()})"
            for f in structure["flagships"]
        ]
        + [
            f"Living lab {l['key'].upper()}: {l['title']} "
            f"(leader {l['leader'].upper()})"
            for l in structure["living_labs"]
        ],
    )
