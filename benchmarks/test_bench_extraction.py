"""Extraction benchmark: drafting study entities from screened publications.

Covers the corpus→study bridge: extracting tool candidates from a harvested
corpus and the cross-validated (out-of-sample) accuracy of the classifier
that assigns their directions — the honest counterpart to the in-sample
Table 1 accuracies.
"""

from __future__ import annotations

from conftest import report

from repro.core.extraction import (
    cross_validate_classifier,
    extract_tool_candidates,
)
from repro.data.synthetic import synthetic_corpus, synthetic_ecosystem


def test_bench_candidate_extraction(benchmark, scheme):
    """Draft tool candidates from 500 screened synthetic publications."""
    publications = list(synthetic_corpus(500, seed=31))

    candidates = benchmark(extract_tool_candidates, publications, scheme)
    assert len(candidates) == 500
    flagged = sum(candidate.needs_review for candidate in candidates)
    report(
        "Extraction — 500 publications → tool candidates",
        [f"{flagged} of 500 flagged for human review "
         f"({flagged / 5:.0f}%)"],
    )


def test_bench_cross_validation_icsc(benchmark, tools, scheme):
    """5-fold out-of-sample accuracy on the 25 real descriptions."""
    texts = [t.description for t in tools]
    labels = [t.primary_direction for t in tools]

    stats = benchmark(
        cross_validate_classifier, texts, labels, scheme, seed=0
    )
    assert stats["mean_accuracy"] >= 0.8
    report(
        "Extraction — 5-fold CV on the 25 ICSC tools (out-of-sample)",
        [f"mean={stats['mean_accuracy']:.2f} "
         f"min={stats['min_accuracy']:.2f} max={stats['max_accuracy']:.2f}"],
    )


def test_bench_cross_validation_scale(benchmark):
    """5-fold CV over a 300-tool synthetic ecosystem."""
    _, tools, _, scheme = synthetic_ecosystem(
        n_institutions=20, n_tools=300, n_applications=10, seed=17
    )
    texts = [t.description for t in tools]
    labels = [t.primary_direction for t in tools]

    stats = benchmark(
        cross_validate_classifier, texts, labels, scheme, seed=1
    )
    assert stats["mean_accuracy"] > 0.7
