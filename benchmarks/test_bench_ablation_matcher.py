"""Ablation benchmark: requirement-matcher design choices.

Sweeps the matcher's blend weight between direction-space affinity and raw
text similarity, and its selection threshold, reporting cell-level F1
against the published Table 2.  Verifies the headline shape holds across
the sweep: orchestration stays the most-demanded direction.
"""

from __future__ import annotations

import pytest
from conftest import report

from repro.continuum.matching import MatchModel


@pytest.mark.parametrize("direction_weight", [0.0, 0.5, 0.7, 1.0])
def test_bench_matcher_weight_sweep(
    benchmark, tools, applications, scheme, direction_weight
):
    """F1 of the matcher at each direction/text blend weight."""

    def build_and_eval():
        model = MatchModel(
            tools, applications, scheme, direction_weight=direction_weight
        )
        return model.evaluate(mode="cardinality")

    match = benchmark(build_and_eval)
    assert 0.0 <= match.agreement["f1"] <= 1.0
    # Across the whole sweep, orchestration must stay in the top-2 demanded
    # directions and energy efficiency at the bottom; the *default* blend
    # (0.7) must reproduce the exact paper ranking (asserted in
    # test_bench_table2.py).
    ranked = sorted(match.predicted_votes.items(), key=lambda kv: -kv[1])
    top2 = {key for key, _ in ranked[:2]}
    assert "orchestration" in top2
    assert match.predicted_votes["energy-efficiency"] <= 2
    report(
        f"Matcher ablation — direction_weight={direction_weight}",
        [f"F1={match.agreement['f1']:.3f} "
         f"predicted={match.predicted_votes}"],
    )


def test_bench_matcher_threshold_sweep(benchmark, tools, applications, scheme):
    """Selection count vs threshold: monotone, spanning the true count (28)."""
    model = MatchModel(tools, applications, scheme)
    thresholds = [0.2, 0.3, 0.4, 0.5, 0.6, 0.7]

    def sweep():
        return [
            model.select_threshold(t).total_selections for t in thresholds
        ]

    counts = benchmark(sweep)
    assert all(a >= b for a, b in zip(counts, counts[1:]))  # monotone
    assert counts[0] >= 28 >= counts[-1]  # the truth lies inside the sweep
    report(
        "Matcher ablation — threshold sweep",
        [f"threshold={t}: {c} selections"
         for t, c in zip(thresholds, counts)],
    )
