"""Serve-layer load benchmark: throughput, tail latency, coalescing.

The serve subsystem's contract is numeric, so the bench gates on it:

* **warm throughput** — ≥ 16 concurrent keep-alive clients hammering a
  memoized ``/study/*`` endpoint must sustain ≥ 500 req/s aggregate
  with p99 ≤ 50 ms (the stdlib server is GIL-bound; the cache makes
  each request a dictionary lookup plus JSON serialization);
* **cold coalescing** — N identical concurrent requests against a cold
  cache must trigger exactly one underlying study computation
  (``serve.study.computations`` on ``/metrics``), every caller still
  receiving a full 200 payload.

Timings aggregate into ``output/BENCH_serve.json`` via the shared
conftest hook; the throughput/latency numbers of the best round are
printed through ``report()``.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
import urllib.request

from conftest import report

from repro.serve import ServerHandle, build_context

CLIENTS = 16
REQUESTS_PER_CLIENT = 48

THROUGHPUT_FLOOR_RPS = 500.0
P99_CEILING_S = 0.050


def _get_json(url: str):
    with urllib.request.urlopen(url, timeout=30) as response:
        return json.loads(response.read())


def _run_load(host: str, port: int, path: str) -> dict[str, float]:
    """One load round: CLIENTS keep-alive connections, latencies in s."""
    start_gun = threading.Event()
    latencies: list[list[float]] = [[] for _ in range(CLIENTS)]
    failures: list[str] = []

    def client(slot: int) -> None:
        connection = http.client.HTTPConnection(host, port, timeout=30)
        try:
            start_gun.wait(30.0)
            for _ in range(REQUESTS_PER_CLIENT):
                begin = time.perf_counter()
                connection.request("GET", path)
                response = connection.getresponse()
                body = response.read()
                latencies[slot].append(time.perf_counter() - begin)
                if response.status != 200 or not body:
                    failures.append(f"{response.status} on {path}")
        except Exception as exc:
            failures.append(repr(exc))
        finally:
            connection.close()

    threads = [
        threading.Thread(target=client, args=(slot,))
        for slot in range(CLIENTS)
    ]
    for thread in threads:
        thread.start()
    start = time.perf_counter()
    start_gun.set()
    for thread in threads:
        thread.join(120.0)
    elapsed = time.perf_counter() - start
    assert not failures, failures[:3]
    flat = sorted(lat for per_client in latencies for lat in per_client)
    assert len(flat) == CLIENTS * REQUESTS_PER_CLIENT
    return {
        "requests": float(len(flat)),
        "elapsed_s": elapsed,
        "rps": len(flat) / elapsed,
        "p50_s": flat[len(flat) // 2],
        "p99_s": flat[int(len(flat) * 0.99)],
        "max_s": flat[-1],
    }


def test_warm_study_throughput_and_tail_latency(benchmark):
    context = build_context(job_workers=1, queue_size=2)
    rounds: list[dict[str, float]] = []
    try:
        with ServerHandle(context, workers=CLIENTS + 8) as handle:
            # Warm the memoized payloads before measuring.
            table1 = _get_json(handle.url + "/study/table1")
            assert table1["rows"]

            def load_round():
                rounds.append(
                    _run_load(handle.host, handle.port, "/study/table1")
                )

            benchmark.pedantic(load_round, rounds=3, iterations=1)
            snapshot = _get_json(handle.url + "/metrics")
    finally:
        context.jobs.close(drain=False)

    best = max(rounds, key=lambda stats: stats["rps"])
    report(
        "Serve load: 16 keep-alive clients on warm /study/table1",
        [
            f"rounds: {len(rounds)} × {CLIENTS} clients × "
            f"{REQUESTS_PER_CLIENT} requests",
            f"best throughput: {best['rps']:.0f} req/s "
            f"(floor {THROUGHPUT_FLOOR_RPS:.0f})",
            f"best-round p50: {best['p50_s'] * 1000:.2f} ms, "
            f"p99: {best['p99_s'] * 1000:.2f} ms "
            f"(ceiling {P99_CEILING_S * 1000:.0f} ms)",
            f"server-side study computations: "
            f"{snapshot['serve.study.computations']['value']:.0f}",
        ],
    )
    assert best["rps"] >= THROUGHPUT_FLOOR_RPS
    assert best["p99_s"] <= P99_CEILING_S
    # The load rode the payload cache: the study ran exactly once, at
    # warm-up, no matter how many requests followed.
    assert snapshot["serve.study.computations"]["value"] == 1
    # Every request landed in the per-endpoint latency histogram.
    server_histogram = snapshot["serve.request_seconds.study_get"]
    assert server_histogram["count"] >= len(rounds) * CLIENTS * (
        REQUESTS_PER_CLIENT
    )


def test_cold_burst_coalesces_to_single_computation(benchmark):
    def cold_burst():
        context = build_context(job_workers=1, queue_size=2)
        statuses: list[int] = []
        try:
            with ServerHandle(context, workers=CLIENTS + 8) as handle:
                barrier = threading.Barrier(CLIENTS)

                def client() -> None:
                    connection = http.client.HTTPConnection(
                        handle.host, handle.port, timeout=60
                    )
                    try:
                        barrier.wait(30.0)
                        connection.request("GET", "/study/table2")
                        response = connection.getresponse()
                        payload = json.loads(response.read())
                        if response.status == 200 and payload["rows"]:
                            statuses.append(response.status)
                    finally:
                        connection.close()

                threads = [
                    threading.Thread(target=client)
                    for _ in range(CLIENTS)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(120.0)
                snapshot = _get_json(handle.url + "/metrics")
        finally:
            context.jobs.close(drain=False)
        return statuses, snapshot

    statuses, snapshot = benchmark.pedantic(
        cold_burst, rounds=2, iterations=1
    )
    assert statuses == [200] * CLIENTS
    # The acceptance gate: N identical concurrent cold requests ran the
    # study exactly once; everyone else coalesced onto that leader or
    # hit the payload cache it filled.
    assert snapshot["serve.study.computations"]["value"] == 1
    coalesced = snapshot.get("serve.coalesced_waiters", {}).get("value", 0)
    leaders = snapshot.get("serve.coalesced_leaders", {}).get("value", 0)
    assert leaders <= 1
    report(
        "Serve cold burst: 16 identical concurrent /study/table2",
        [
            f"computations: "
            f"{snapshot['serve.study.computations']['value']:.0f} "
            f"(16 requests)",
            f"coalesced followers: {coalesced:.0f}, leaders: {leaders:.0f}",
            "every request answered 200 with the full payload",
        ],
    )
