"""Corpus-at-scale benchmark: the persistent store on a 100k-record corpus.

Gates the ``repro.corpus.store`` engine against the scale an SMS harvest
actually produces (raw exports from four digital libraries, pre-dedup):

* streaming BibTeX ingestion holds O(batch) Python heap, not O(corpus);
* inverted-index query resolution beats a linear ``Query.filter`` scan by
  >= 10x with bit-identical hits;
* a warm re-open of the store file serves queries immediately, without
  re-ingesting anything;
* blocked near-duplicate detection runs at full scale with bounded memory
  and recovers every injected duplicate.

The corpus is generated here rather than via ``repro.data.synthetic``:
that generator's small title vocabulary is tuned for <=4k-record suites
and degenerates rare-shingle blocking at 100k (every shingle becomes
common, so *any* blocked dedup goes quadratic).  Real bibliographies have
diverse titles; the generator below emulates that with a wide sampled
vocabulary plus a unique per-record study tag, while injecting the same
three duplicate mutations ``synthetic_corpus`` uses (case folding,
subtitle truncation, off-by-one year).

Timings land in ``output/BENCH_corpus_scale.json`` via the session-end
aggregation in ``conftest.py``.
"""

from __future__ import annotations

import random
import time
import tracemalloc

from conftest import report

from repro.corpus.query import Query
from repro.corpus.store import CorpusStore

N_RECORDS = 100_000
DUP_FRACTION = 0.02
SEED = 17

_N_DUPS = int(N_RECORDS * DUP_FRACTION)
_N_ORIGINALS = N_RECORDS - _N_DUPS

_VOCAB_SIZE = 20_000
_WORD_LEN = 7

_SURNAMES = (
    "Aldinucci", "Bianchi", "Colonnelli", "Danelutto", "Esposito",
    "Ferrari", "Greco", "Lombardi", "Marino", "Ricci", "Romano", "Torquati",
)
_VENUES = (
    "Future Generation Computer Systems", "IEEE TPDS", "JPDC",
    "Euro-Par", "CCGrid", "PDP", "Journal of Supercomputing",
)

# Module-level cache so the expensive corpus build and ingest happen once
# per session; tests run in definition order (ingest populates the store
# the later tests reuse, dedup mutates it and therefore runs last), and
# each test falls back to building its own store when run in isolation.
_STATE: dict = {}


def _study_tag(i: int) -> str:
    """Unique little-endian base-26 tag: low letters vary fastest, so every
    4-gram shingle of the tag is unique across 100k records — this is what
    keeps rare-shingle blocking selective, the way real titles do."""
    return "".join(chr(97 + (i // 26**k) % 26) for k in range(6))


def _entry(key: str, title: str, author: str, year: int, venue: str) -> str:
    return (
        f"@article{{{key},\n"
        f"  title = {{{title}}},\n"
        f"  author = {{{author}}},\n"
        f"  year = {{{year}}},\n"
        f"  journal = {{{venue}}}\n"
        f"}}"
    )


def _build_corpus() -> tuple[str, list[str]]:
    """Return (bibtex text, vocabulary) for the 100k-record corpus."""
    rng = random.Random(SEED)
    vocab = [
        "".join(chr(97 + rng.randrange(26)) for _ in range(_WORD_LEN))
        for _ in range(_VOCAB_SIZE)
    ]
    entries: list[str] = []
    originals: list[tuple[str, str, int, str]] = []
    for i in range(_N_ORIGINALS):
        w = [vocab[rng.randrange(_VOCAB_SIZE)] for _ in range(5)]
        title = (
            f"{w[0]} {w[1]} {w[2]} for {w[3]} {w[4]}:"
            f" evidence from study {_study_tag(i)}"
        )
        author = f"{_SURNAMES[i % len(_SURNAMES)]}, {chr(65 + i % 26)}."
        year = 2005 + i % 19
        venue = _VENUES[i % len(_VENUES)]
        entries.append(_entry(f"syn-{i:06d}", title, author, year, venue))
        originals.append((title, author, year, venue))
    for j in range(_N_DUPS):
        src = rng.randrange(_N_ORIGINALS)
        title, author, year, venue = originals[src]
        kind = j % 3
        if kind == 0:
            title = title.upper()
        elif kind == 1:
            title = title.split(":")[0]
        else:
            year += 1
        entries.append(
            _entry(f"dup-{j:05d}-of-syn-{src:06d}", title, author, year, venue)
        )
    return "\n\n".join(entries), vocab


def _corpus_text() -> str:
    if "text" not in _STATE:
        _STATE["text"], _STATE["vocab"] = _build_corpus()
    return _STATE["text"]


def _scale_query() -> Query:
    _corpus_text()
    vocab = _STATE["vocab"]
    return Query(f"({vocab[0]} OR {vocab[1]}) AND NOT {vocab[2]}")


def _ensure_store(tmp_path_factory):
    if "store_path" not in _STATE:
        path = tmp_path_factory.mktemp("corpus_scale") / "corpus.sqlite3"
        with CorpusStore(path) as store:
            store.ingest_bibtex(_corpus_text(), batch_size=2000)
        _STATE["store_path"] = path
    return _STATE["store_path"]


def test_bench_ingest_100k_streaming(benchmark, tmp_path_factory):
    """Ingest 100k records into a file store with O(batch) Python heap."""
    text = _corpus_text()
    path = tmp_path_factory.mktemp("corpus_scale") / "corpus.sqlite3"
    peaks: list[int] = []

    def run():
        tracemalloc.start()
        try:
            with CorpusStore(path) as store:
                return store.ingest_bibtex(text, batch_size=2000)
        finally:
            peaks.append(tracemalloc.get_traced_memory()[1])
            tracemalloc.stop()

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    assert outcome.ingested == N_RECORDS
    assert outcome.renamed == 0 and outcome.skipped == 0
    assert outcome.rejected == ()
    peak_mb = peaks[-1] / 2**20
    # The generator pipeline must never materialize the parsed corpus:
    # a Publication list alone would be tens of MB at this scale.
    assert peak_mb < 64.0
    _STATE["store_path"] = path
    report(
        f"Corpus scale — ingest {N_RECORDS} records ({len(text) / 2**20:.1f} MB BibTeX)",
        [f"peak Python heap during ingest: {peak_mb:.2f} MB "
         "(timing includes tracemalloc overhead)"],
    )


def test_bench_indexed_query_vs_linear(benchmark, tmp_path_factory):
    """Inverted-index search must beat a linear filter scan by >= 10x."""
    path = _ensure_store(tmp_path_factory)
    query = _scale_query()
    with CorpusStore(path) as store:
        records = list(store)

        t0 = time.perf_counter()
        linear_hits = query.filter(records)
        linear_s = time.perf_counter() - t0

        indexed_s = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            indexed_hits = store.search(query)
            indexed_s = min(indexed_s, time.perf_counter() - t0)

        benchmark.pedantic(store.search, args=(query,), rounds=5, iterations=1)

    assert [p.key for p in indexed_hits] == [p.key for p in linear_hits]
    assert 0 < len(indexed_hits) < N_RECORDS
    assert linear_s >= 10.0 * indexed_s
    report(
        f"Corpus scale — query over {N_RECORDS} records",
        [f"hits={len(indexed_hits)}  indexed={indexed_s * 1e3:.1f} ms  "
         f"linear={linear_s * 1e3:.1f} ms  "
         f"speedup={linear_s / indexed_s:.0f}x"],
    )


def test_bench_warm_reopen(benchmark, tmp_path_factory):
    """Re-opening the store file serves queries with no re-ingestion."""
    path = _ensure_store(tmp_path_factory)
    query = _scale_query()

    def reopen():
        with CorpusStore(path) as store:
            assert len(store) == N_RECORDS
            return store.search(query)

    t0 = time.perf_counter()
    hits = reopen()
    warm_s = time.perf_counter() - t0
    benchmark.pedantic(reopen, rounds=3, iterations=1)

    assert hits  # index pages are on disk, not rebuilt
    # Ingest takes tens of seconds at this scale; a warm open that answers
    # a query in under two seconds cannot have re-ingested anything.
    assert warm_s < 2.0
    report(
        f"Corpus scale — warm re-open of {N_RECORDS} records",
        [f"open + query: {warm_s * 1e3:.0f} ms, {len(hits)} hits"],
    )


def test_bench_dedup_100k(benchmark, tmp_path_factory):
    """Blocked dedup at 100k: full recovery, memory bounded by records."""
    path = _ensure_store(tmp_path_factory)
    peaks: list[int] = []

    def run():
        tracemalloc.start()
        try:
            with CorpusStore(path) as store:
                summary = store.deduplicate()
                leftover = [k for k in store.keys if k.startswith("dup-")]
                return summary, leftover, len(store)
        finally:
            peaks.append(tracemalloc.get_traced_memory()[1])
            tracemalloc.stop()

    summary, leftover, remaining = benchmark.pedantic(run, rounds=1, iterations=1)
    # Every injected duplicate shares its source's shingles, so blocking
    # must surface each pair and merging must keep the original's key.
    assert leftover == []
    assert summary.dropped >= _N_DUPS
    assert remaining == N_RECORDS - summary.dropped
    peak_mb = peaks[-1] / 2**20
    # Candidate pairs stream through SQL; Python heap holds only the
    # per-record shingle sets, never an O(pairs) structure.
    assert summary.pairs_scored > 0
    assert peak_mb < 512.0
    report(
        f"Corpus scale — dedup over {N_RECORDS} records",
        [f"pairs_scored={summary.pairs_scored}  clusters={summary.clusters}  "
         f"dropped={summary.dropped}  remaining={remaining}  "
         f"peak heap={peak_mb:.1f} MB"],
    )


def test_bench_batched_postings_insert(benchmark, tmp_path_factory):
    """Batched ``extend`` — postings buffered across records, one
    ``executemany`` + commit per batch — beats the per-record ``add``
    path >= 2x on an identical 10k-record ingest."""
    from repro.corpus.bibtex import publications_from_bibtex

    n = 10_000
    text = "\n\n".join(_corpus_text().split("\n\n")[:n])
    publications = list(publications_from_bibtex(text))
    assert len(publications) == n
    root = tmp_path_factory.mktemp("corpus_batch")

    def batched():
        with CorpusStore(root / "batched.sqlite3") as store:
            return store.extend(publications, batch_size=2000)

    outcome = benchmark.pedantic(batched, rounds=1, iterations=1)
    assert outcome.ingested == n
    (root / "batched.sqlite3").unlink()
    start = time.perf_counter()
    batched()
    batched_s = time.perf_counter() - start

    start = time.perf_counter()
    with CorpusStore(root / "single.sqlite3") as store:
        for publication in publications:
            store.add(publication)
        single_count = len(store)
    single_s = time.perf_counter() - start
    assert single_count == n

    speedup = single_s / batched_s
    report(
        f"Corpus scale — batched postings insert ({n} records)",
        [
            f"extend (batched): {batched_s * 1e3:9.1f} ms "
            f"({batched_s / n * 1e6:6.1f} µs/record)",
            f"add loop:         {single_s * 1e3:9.1f} ms "
            f"({single_s / n * 1e6:6.1f} µs/record)",
            f"speedup:          {speedup:9.2f}x (identical records)",
        ],
    )
    assert speedup >= 2.0, (
        f"batched ingest only {speedup:.2f}x faster than add loop (< 2x)"
    )
