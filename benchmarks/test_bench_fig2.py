"""Figure 2 benchmark: tool distribution over the five research directions.

Regenerates the Fig. 2 pie data from the raw catalogue, asserts the
published counts (3, 7, 3, 6, 6) and the quoted 12% / 28% shares (Q2), and
benchmarks the full figure pipeline (analysis + SVG render).
"""

from __future__ import annotations

from conftest import report

from repro.core.analysis import supply_distribution
from repro.data.expected import FIG2_COUNTS, Q2_SHARES
from repro.viz.ascii import ascii_distribution
from repro.viz.pie import pie_chart


def test_bench_fig2_distribution(benchmark, tools, scheme):
    """Benchmark the Fig. 2 analysis and verify every published number."""
    table = benchmark(supply_distribution, tools, scheme)
    assert table.to_dict() == FIG2_COUNTS
    assert table.share("interactive-computing") == Q2_SHARES["interactive-computing"]
    assert table.share("orchestration") == Q2_SHARES["orchestration"]
    names = dict(zip(scheme.keys, scheme.names))
    report(
        "Figure 2 — tool distribution (paper: 3, 7, 3, 6, 6)",
        ascii_distribution(table, label_names=names).splitlines(),
    )


def test_bench_fig2_render(benchmark, tools, scheme):
    """Benchmark rendering the Fig. 2 pie to SVG."""
    table = supply_distribution(tools, scheme)
    names = dict(zip(scheme.keys, scheme.names))

    def render() -> str:
        return pie_chart(
            table,
            title="Tool distribution over the five research directions",
            label_names=names,
        ).render()

    svg = benchmark(render)
    assert svg.startswith("<svg")
    assert svg.count("<path") == 5  # one slice per direction
