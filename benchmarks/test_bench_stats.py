"""Statistics-substrate benchmark: agreement and inference at scale.

The screening stage of a full-size SMS computes inter-rater agreement over
thousands of double-screened records and the analysis stage runs seeded
resampling; these benches keep those kernels honest (vectorized paths, no
quadratic blowups).
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import report

from repro.data.synthetic import synthetic_ratings
from repro.screening.agreement import cohen_kappa, fleiss_kappa, krippendorff_alpha
from repro.stats.inference import bootstrap_share_ci, permutation_tvd_test


@pytest.mark.parametrize("n_items", [1000, 10_000])
def test_bench_cohen_kappa_scaling(benchmark, n_items):
    """Cohen's kappa over two raters and many items."""
    ratings = synthetic_ratings(n_items, 2, 5, agreement=0.8, seed=3)

    kappa = benchmark(cohen_kappa, ratings[0], ratings[1])
    assert 0.5 < kappa < 1.0
    report(f"Agreement — Cohen kappa, {n_items} items", [f"kappa={kappa:.3f}"])


def test_bench_fleiss_kappa(benchmark):
    """Fleiss' kappa over five raters and 5000 items."""
    ratings = synthetic_ratings(5000, 5, 4, agreement=0.75, seed=4)
    rows = np.zeros((5000, 4), dtype=np.float64)
    for rater in ratings:
        rows[np.arange(5000), rater] += 1

    kappa = benchmark(fleiss_kappa, rows)
    assert 0.3 < kappa < 1.0


def test_bench_krippendorff(benchmark):
    """Krippendorff's alpha with 10% missing data, 2000 items, 3 raters."""
    rng = np.random.default_rng(6)
    ratings = synthetic_ratings(2000, 3, 4, agreement=0.8, seed=6)
    with_missing = [
        [None if rng.random() < 0.1 else value for value in rater]
        for rater in ratings
    ]

    alpha = benchmark(krippendorff_alpha, with_missing)
    assert 0.4 < alpha < 1.0


def test_bench_permutation_test(benchmark):
    """Vectorized permutation TVD test at 100k permutations."""
    result = benchmark(
        permutation_tvd_test,
        [3, 7, 3, 6, 6], [4, 11, 1, 6, 6],
        seed=2023, n_permutations=100_000,
    )
    assert 0.0 < result.p_value <= 1.0
    report("Inference — permutation test (100k permutations)",
           [f"TVD={result.statistic:.3f} p={result.p_value:.4f}"])


def test_bench_bootstrap_vectorized(benchmark):
    """Vectorized multinomial bootstrap at 200k resamples."""
    low, high = benchmark(
        bootstrap_share_ci,
        [4, 11, 1, 6, 6], 1,
        seed=2023, n_resamples=200_000,
    )
    assert low < 11 / 28 < high
