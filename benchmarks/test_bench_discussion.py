"""Sec. 4 (Discussion) benchmark: the quantitative claims behind Q2 and Q3.

Regenerates every number the discussion quotes — the 12%/28% supply shares,
the "balanced" supply vs "much more unbalanced" demand contrast, the
<3.6% / >39% demand shares, and the critical-need directions — and adds the
statistical depth a reproduction should report: evenness indices, bootstrap
confidence intervals, and a permutation test on supply vs demand.
"""

from __future__ import annotations

from conftest import report

from repro.core.analysis import compare_supply_demand
from repro.core.questions import answer_q2, answer_q3
from repro.stats.inference import bootstrap_share_ci


def test_bench_q2_analysis(benchmark, tools, scheme):
    """Benchmark the Q2 analysis; verify the paper's Sec. 4 Q2 claims."""
    q2 = benchmark(answer_q2, tools, scheme)
    assert q2.shares["interactive-computing"] == 0.12
    assert q2.shares["orchestration"] == 0.28
    assert q2.balanced
    assert q2.majority_single_topic
    assert q2.full_coverage_institutions == 0
    report(
        "Q2 — how widespread each direction is",
        [
            f"shares: { {k: round(v, 2) for k, v in q2.shares.items()} }",
            f"Shannon evenness: {q2.evenness['shannon_evenness']:.3f} (balanced)",
            f"single-topic institutions: {q2.single_topic_institutions}/{q2.n_institutions}",
        ],
    )


def test_bench_q3_analysis(benchmark, tools, applications, scheme):
    """Benchmark the Q3 analysis; verify the paper's Sec. 4 Q3 claims."""
    q3 = benchmark(
        answer_q3, tools, applications, scheme, seed=2023
    )
    assert q3.top_direction == "orchestration"
    assert q3.bottom_direction == "energy-efficiency"
    assert q3.shares["energy-efficiency"] < 0.036
    assert q3.shares["orchestration"] > 0.39
    assert set(q3.critical_directions) == {
        "interactive-computing", "orchestration",
        "performance-portability", "big-data-management",
    }
    report(
        "Q3 — critical needs of applications",
        [
            f"shares: { {k: round(v, 3) for k, v in q3.shares.items()} }",
            f"critical (>=3 apps): {q3.critical_directions}",
            f"supply-demand TVD: {q3.comparison.tvd:.3f} "
            f"(permutation p={q3.comparison.permutation.p_value:.3f})",
        ],
    )


def test_bench_supply_demand_comparison(benchmark, tools, applications, scheme):
    """Benchmark the full supply-vs-demand statistical comparison."""
    comparison = benchmark(
        compare_supply_demand,
        tools, applications, scheme,
        seed=2023, n_permutations=5000,
    )
    # Paper orientation: demand much more unbalanced than supply.
    assert (
        comparison.demand_evenness["shannon_evenness"]
        < comparison.supply_evenness["shannon_evenness"]
    )
    assert comparison.demand_supply_ratio["orchestration"] > 1.0
    assert comparison.demand_supply_ratio["energy-efficiency"] < 0.5
    report(
        "Supply (Fig. 2) vs demand (Fig. 4)",
        [
            f"supply evenness: {comparison.supply_evenness['shannon_evenness']:.3f}",
            f"demand evenness: {comparison.demand_evenness['shannon_evenness']:.3f}",
            f"demand/supply ratios: "
            f"{ {k: round(v, 2) for k, v in comparison.demand_supply_ratio.items()} }",
        ],
    )


def test_bench_bootstrap_ci(benchmark, selection, tools, scheme):
    """Benchmark bootstrap CIs for the orchestration demand share (Fig. 4)."""
    votes = selection.votes_per_direction(tools, scheme)
    index = list(votes.labels).index("orchestration")

    low, high = benchmark(
        bootstrap_share_ci,
        votes, index, seed=2023, n_resamples=10_000,
    )
    point = votes.share("orchestration")
    assert low <= point <= high
    report(
        "Bootstrap 95% CI — orchestration demand share",
        [f"point {point:.3f}, CI [{low:.3f}, {high:.3f}] "
         "(28 votes: wide by construction)"],
    )
