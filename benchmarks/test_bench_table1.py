"""Table 1 benchmark: the 25-tool classification.

Two pipelines regenerate Table 1:

* the *published* path — group the catalogued tools by their (manual)
  primary direction and lay out the paper's table;
* the *simulated-manual-classification* path — run the keyword classifier
  over the 25 descriptions and rebuild the table from predicted labels
  (DESIGN.md §3, substitution 1); agreement with the published table is the
  experiment's headline number.
"""

from __future__ import annotations

from conftest import report

from repro.core.classification import KeywordClassifier, evaluate_classifier
from repro.data.expected import TABLE1_CONTENT
from repro.tables.table1 import build_table1, table1_columns


def test_bench_table1_build(benchmark, tools, scheme):
    """Benchmark regenerating Table 1 from the catalogue; verify content."""
    table = benchmark(build_table1, tools, scheme)
    columns = table1_columns(tools, scheme)
    for direction, names in TABLE1_CONTENT.items():
        assert columns[direction] == names
    assert table.header == scheme.names
    report("Table 1 — collected tools by research direction",
           table.to_text().splitlines())


def test_bench_table1_auto_classification(benchmark, tools, scheme):
    """Benchmark the automatic classifier replaying the manual classification."""
    descriptions = [t.description for t in tools]
    gold = [t.primary_direction for t in tools]

    def classify_all():
        classifier = KeywordClassifier(scheme)
        return classifier.classify_many(descriptions)

    predictions = benchmark(classify_all)
    evaluation = evaluate_classifier(predictions, gold, scheme)
    # The keyword classifier recovers the published Table 1 exactly.
    assert evaluation.accuracy == 1.0
    report(
        "Table 1 (simulated manual classification)",
        [
            f"accuracy: {evaluation.accuracy:.2f}  "
            f"macro-F1: {evaluation.macro_f1():.2f}  "
            f"misclassified: {len(evaluation.misclassified)}",
        ],
    )
