"""Continuum-substrate benchmark: scheduling across the HPC+Cloud+Edge tiers.

Exercises the workflow substrate the paper's orchestration and energy
directions motivate: HEFT, the energy-aware scheduler, and the round-robin
baseline on representative workloads, reporting makespan/energy/carbon
series, plus the energy-vs-makespan ablation over the slack knob and the
robustness of plans under execution jitter.
"""

from __future__ import annotations

import pytest
from conftest import report

from repro.continuum.resources import default_continuum
from repro.continuum.scheduling import (
    EnergyAwareScheduler,
    HeftScheduler,
    RoundRobinScheduler,
)
from repro.continuum.simulate import simulate_schedule
from repro.continuum.workflow import layered_workflow, random_workflow

CONTINUUM = default_continuum(n_hpc=2, n_cloud=4, n_edge=8, seed=2023)
WORKFLOW = random_workflow(120, seed=2023, edge_probability=0.08)
SCHEDULERS = {
    "heft": HeftScheduler(),
    "energy-aware": EnergyAwareScheduler(slack=2.0),
    "round-robin": RoundRobinScheduler(),
}


@pytest.mark.parametrize("name", list(SCHEDULERS))
def test_bench_scheduler_random_dag(benchmark, name):
    """Schedule a 120-task random DAG on the 14-node continuum."""
    scheduler = SCHEDULERS[name]
    schedule = benchmark(scheduler.schedule, WORKFLOW, CONTINUUM)
    schedule.validate()
    report(
        f"Scheduling — {name} on random-120",
        [f"makespan={schedule.makespan:.3f}s "
         f"busy={schedule.busy_energy():.0f}J "
         f"total={schedule.total_energy():.0f}J "
         f"carbon={schedule.carbon():.0f}"],
    )


def test_bench_scheduler_ranking_low_comm(benchmark):
    """With light communication, HEFT must beat round-robin on makespan."""
    wf = random_workflow(100, seed=7, output_range=(0.0, 0.1))

    def run_all():
        return {
            name: scheduler.schedule(wf, CONTINUUM)
            for name, scheduler in SCHEDULERS.items()
        }

    schedules = benchmark(run_all)
    assert schedules["heft"].makespan < schedules["round-robin"].makespan
    report(
        "Scheduling — makespan ranking (communication-light random-100)",
        [f"{name}: makespan={s.makespan:.3f}s busy={s.busy_energy():.0f}J"
         for name, s in schedules.items()],
    )


@pytest.mark.parametrize("slack", [1.0, 1.5, 2.0, 4.0])
def test_bench_energy_slack_ablation(benchmark, slack):
    """Energy-vs-makespan trade-off over the slack knob (DESIGN.md ablation)."""
    wf = layered_workflow(6, 8, work=20.0, output_size=0.5)
    scheduler = EnergyAwareScheduler(slack=slack)

    schedule = benchmark(scheduler.schedule, wf, CONTINUUM)
    schedule.validate()
    report(
        f"Energy ablation — slack={slack}",
        [f"makespan={schedule.makespan:.3f}s busy={schedule.busy_energy():.0f}J "
         f"total={schedule.total_energy():.0f}J"],
    )


def test_bench_plan_robustness(benchmark):
    """Execute the HEFT plan under 30% duration jitter; slowdown stays sane."""
    schedule = HeftScheduler().schedule(WORKFLOW, CONTINUUM)

    trace = benchmark(simulate_schedule, schedule, jitter=0.3, seed=99)
    assert 0.5 < trace.slowdown < 3.0
    report(
        "Robustness — HEFT plan under lognormal(0.3) jitter",
        [f"planned={trace.planned_makespan:.3f}s realized={trace.makespan:.3f}s "
         f"slowdown={trace.slowdown:.3f}"],
    )
