"""Continuum-substrate benchmark: scheduling across the HPC+Cloud+Edge tiers.

Exercises the workflow substrate the paper's orchestration and energy
directions motivate: HEFT, the energy-aware scheduler, and the round-robin
baseline on representative workloads, reporting makespan/energy/carbon
series, plus the energy-vs-makespan ablation over the slack knob and the
robustness of plans under execution jitter.

Two acceptance gates cover the compiled scheduling core
(`repro.continuum.compile`): compiled HEFT must beat the pure-Python
reference by ≥10× on a 5k-task × 500-resource fleet (on bit-identical
placements), and a 10k-task × 1k-resource fleet must schedule, validate,
and simulate end-to-end inside a fixed wall-clock budget.
"""

from __future__ import annotations

import time

import pytest
from conftest import report

from repro.continuum.compile import compile_problem
from repro.continuum.resources import default_continuum
from repro.continuum.scheduling import (
    EnergyAwareScheduler,
    HeftScheduler,
    RoundRobinScheduler,
)
from repro.continuum.simulate import simulate_schedule
from repro.continuum.workflow import layered_workflow, random_workflow

CONTINUUM = default_continuum(n_hpc=2, n_cloud=4, n_edge=8, seed=2023)
WORKFLOW = random_workflow(120, seed=2023, edge_probability=0.08)
SCHEDULERS = {
    "heft": HeftScheduler(),
    "energy-aware": EnergyAwareScheduler(slack=2.0),
    "round-robin": RoundRobinScheduler(),
}


@pytest.mark.parametrize("name", list(SCHEDULERS))
def test_bench_scheduler_random_dag(benchmark, name):
    """Schedule a 120-task random DAG on the 14-node continuum."""
    scheduler = SCHEDULERS[name]
    schedule = benchmark(scheduler.schedule, WORKFLOW, CONTINUUM)
    schedule.validate()
    report(
        f"Scheduling — {name} on random-120",
        [f"makespan={schedule.makespan:.3f}s "
         f"busy={schedule.busy_energy():.0f}J "
         f"total={schedule.total_energy():.0f}J "
         f"carbon={schedule.carbon():.0f}"],
    )


def test_bench_scheduler_ranking_low_comm(benchmark):
    """With light communication, HEFT must beat round-robin on makespan."""
    wf = random_workflow(100, seed=7, output_range=(0.0, 0.1))

    def run_all():
        return {
            name: scheduler.schedule(wf, CONTINUUM)
            for name, scheduler in SCHEDULERS.items()
        }

    schedules = benchmark(run_all)
    assert schedules["heft"].makespan < schedules["round-robin"].makespan
    report(
        "Scheduling — makespan ranking (communication-light random-100)",
        [f"{name}: makespan={s.makespan:.3f}s busy={s.busy_energy():.0f}J"
         for name, s in schedules.items()],
    )


@pytest.mark.parametrize("slack", [1.0, 1.5, 2.0, 4.0])
def test_bench_energy_slack_ablation(benchmark, slack):
    """Energy-vs-makespan trade-off over the slack knob (DESIGN.md ablation)."""
    wf = layered_workflow(6, 8, work=20.0, output_size=0.5)
    scheduler = EnergyAwareScheduler(slack=slack)

    schedule = benchmark(scheduler.schedule, wf, CONTINUUM)
    schedule.validate()
    report(
        f"Energy ablation — slack={slack}",
        [f"makespan={schedule.makespan:.3f}s busy={schedule.busy_energy():.0f}J "
         f"total={schedule.total_energy():.0f}J"],
    )


def test_bench_plan_robustness(benchmark):
    """Execute the HEFT plan under 30% duration jitter; slowdown stays sane."""
    schedule = HeftScheduler().schedule(WORKFLOW, CONTINUUM)

    trace = benchmark(simulate_schedule, schedule, jitter=0.3, seed=99)
    assert 0.5 < trace.slowdown < 3.0
    report(
        "Robustness — HEFT plan under lognormal(0.3) jitter",
        [f"planned={trace.planned_makespan:.3f}s realized={trace.makespan:.3f}s "
         f"slowdown={trace.slowdown:.3f}"],
    )


# Large fleets: sparse DAGs (mean degree ~2-4) at WfCommons-like task
# counts — the regime the compiled core exists for.
LARGE_TASKS, LARGE_RESOURCES = 5_000, 500
HUGE_TASKS, HUGE_RESOURCES = 10_000, 1_000
HUGE_BUDGET_S = 20.0  # generous ~8x headroom over the measured ~2.5 s


def test_bench_heft_compiled_vs_reference(benchmark):
    """Acceptance gate: ≥10× compiled-HEFT speedup at 5k tasks × 500 nodes,
    measured on bit-identical placements."""
    wf = random_workflow(LARGE_TASKS, seed=2026, edge_probability=0.0008)
    continuum = default_continuum(
        n_hpc=50, n_cloud=150, n_edge=300, seed=2026
    )
    scheduler = HeftScheduler()

    start = time.perf_counter()
    reference = scheduler.schedule_reference(wf, continuum)
    reference_s = time.perf_counter() - start

    compiled = benchmark.pedantic(
        scheduler.schedule, args=(wf, continuum), rounds=3, iterations=1
    )
    compiled_s = min(
        _timed(scheduler.schedule, wf, continuum) for _ in range(3)
    )

    # Same placements, same tie-breaks: the speedup is measured on
    # bit-identical schedules, not on a shortcut.
    assert all(compiled[k] == reference[k] for k in wf.task_keys)

    speedup = reference_s / compiled_s
    report(
        f"Compiled core — HEFT at {LARGE_TASKS} tasks × "
        f"{LARGE_RESOURCES} resources ({len(wf.edges)} edges)",
        [
            f"reference: {reference_s:8.2f} s",
            f"compiled:  {compiled_s:8.2f} s (incl. compilation)",
            f"speedup:   {speedup:8.1f}x (bit-identical placements)",
        ],
    )
    assert speedup >= 10.0, (
        f"compiled HEFT only {speedup:.1f}x faster than reference (< 10x)"
    )


def test_bench_huge_fleet_end_to_end(benchmark):
    """Acceptance gate: 10k tasks × 1k resources schedule + validate +
    simulate end-to-end inside the wall-clock budget."""
    wf = random_workflow(HUGE_TASKS, seed=2027, edge_probability=0.0004)
    continuum = default_continuum(
        n_hpc=100, n_cloud=300, n_edge=600, seed=2027
    )

    def end_to_end():
        problem = compile_problem(wf, continuum)
        schedule = HeftScheduler().schedule(
            wf, continuum, problem=problem
        )  # validates internally
        trace = simulate_schedule(
            schedule, jitter=0.2, seed=7, problem=problem
        )
        return schedule, trace

    start = time.perf_counter()
    schedule, trace = end_to_end()
    elapsed = time.perf_counter() - start
    benchmark.pedantic(end_to_end, rounds=2, iterations=1)

    assert len(schedule.placements) == HUGE_TASKS
    assert 0.5 < trace.slowdown < 3.0
    report(
        f"Compiled core — {HUGE_TASKS} tasks × {HUGE_RESOURCES} resources "
        f"end-to-end ({len(wf.edges)} edges)",
        [
            f"schedule + validate + simulate: {elapsed:6.2f} s "
            f"(budget {HUGE_BUDGET_S:.0f} s)",
            f"makespan={schedule.makespan:.3f}s slowdown={trace.slowdown:.3f}",
        ],
    )
    assert elapsed <= HUGE_BUDGET_S, (
        f"10k × 1k pipeline took {elapsed:.2f} s (> {HUGE_BUDGET_S:.0f} s)"
    )


def _timed(fn, *args):
    start = time.perf_counter()
    fn(*args)
    return time.perf_counter() - start
