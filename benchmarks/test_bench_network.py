"""Network-substrate benchmark: ecosystem graphs at ICSC and synthetic scale.

Builds the bipartite graphs, their projections, and the community metrics on
the real 25-tool dataset and on a 400-tool synthetic ecosystem, and reports
the data-derived future-work outputs (integration pairs, collaboration
recommendations).
"""

from __future__ import annotations

from conftest import report

from repro.data.synthetic import synthetic_ecosystem
from repro.network.bipartite import (
    institution_direction_graph,
    project_tools,
    tool_application_graph,
)
from repro.network.metrics import (
    centrality_ranking,
    density_report,
    integration_pairs,
)
from repro.network.recommend import recommend_collaborations


def test_bench_ecosystem_graphs(benchmark, tools, applications, scheme):
    """Build both ICSC bipartite graphs plus the tool projection."""

    def build():
        inst_graph = institution_direction_graph(tools, scheme)
        tool_graph = tool_application_graph(tools, applications)
        return inst_graph, tool_graph, project_tools(tool_graph)

    inst_graph, tool_graph, projection = benchmark(build)
    assert tool_graph.number_of_edges() == 28
    pairs = integration_pairs(projection, min_weight=2)
    assert ("capio", "nethuns", 2) in pairs
    recommendations = recommend_collaborations(inst_graph, top_k=3)
    report(
        "Network — ICSC ecosystem graphs",
        [f"density: {density_report(tool_graph)['density']:.3f}",
         f"integration pairs (>=2 apps): {pairs}",
         "top collaboration: "
         + " + ".join(recommendations[0].institutions)
         + f" (gain {recommendations[0].gain})"],
    )


def test_bench_network_scale(benchmark):
    """Centrality + recommendations over a 400-tool synthetic ecosystem."""
    _, tools, applications, scheme = synthetic_ecosystem(
        n_institutions=40, n_tools=400, n_applications=60,
        seed=29, selection_rate=0.05,
    )

    def analyze():
        tool_graph = tool_application_graph(tools, applications)
        ranking = centrality_ranking(tool_graph, "tool",
                                     method="betweenness")
        inst_graph = institution_direction_graph(tools, scheme)
        return ranking, recommend_collaborations(inst_graph, top_k=5)

    ranking, recommendations = benchmark(analyze)
    assert len(ranking) == 400
    assert all(entry.gain > 0 for entry in recommendations)
