"""Figure 4 benchmark: tool-selection votes per research direction.

Replays the Sec. 3 survey end to end (questionnaire → validated responses →
selection matrix → per-direction votes), asserts the published counts
(4, 11, 1, 6, 6), the quoted share bounds ("below 3.6%" for energy, "above
39%" for orchestration), and benchmarks both the survey pipeline and the
SVG render.
"""

from __future__ import annotations

from conftest import report

from repro.core.analysis import demand_distribution
from repro.data.expected import FIG4_VOTES, Q3_SHARES, TABLE2_TOTAL_SELECTIONS
from repro.survey.aggregate import (
    run_tool_selection_survey,
    selection_matrix_from_responses,
)
from repro.viz.ascii import ascii_distribution
from repro.viz.pie import pie_chart


def test_bench_fig4_survey_pipeline(benchmark, tools, applications, scheme):
    """Benchmark the full survey → matrix → votes pipeline; verify Fig. 4."""

    def pipeline():
        _, responses = run_tool_selection_survey(tools, applications)
        ordered = [
            t.key for d in scheme.keys for t in tools.by_direction(d)
        ]
        matrix = selection_matrix_from_responses(
            responses, ordered,
            name_to_key={t.name: t.key for t in tools},
        )
        return matrix.votes_per_direction(tools, scheme)

    votes = benchmark(pipeline)
    assert votes.to_dict() == FIG4_VOTES
    assert votes.total == TABLE2_TOTAL_SELECTIONS
    assert votes.share("energy-efficiency") < Q3_SHARES["energy-efficiency-max"]
    assert votes.share("orchestration") > Q3_SHARES["orchestration-min"]
    names = dict(zip(scheme.keys, scheme.names))
    report(
        "Figure 4 — selection votes (paper: 4, 11, 1, 6, 6; 28 total)",
        ascii_distribution(votes, label_names=names).splitlines(),
    )


def test_bench_fig4_render(benchmark, selection, tools, scheme):
    """Benchmark rendering the Fig. 4 pie to SVG."""
    votes = demand_distribution(selection, tools, scheme)
    names = dict(zip(scheme.keys, scheme.names))

    def render() -> str:
        return pie_chart(
            votes,
            title="Tools selected for integration, by research direction",
            label_names=names,
        ).render()

    svg = benchmark(render)
    assert svg.startswith("<svg")
