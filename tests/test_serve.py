"""Tests for :mod:`repro.serve`: router, coalescer, job queue, HTTP
endpoints (including every error path), graceful shutdown, and the
concurrency guarantees the worker pool leans on (threaded
:class:`RunRegistry` appends, :class:`ArtifactCache` get/store races)."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.errors import (
    JobQueueFullError,
    ServeError,
    UnknownJobError,
)
from repro.obs import RunRegistry
from repro.pipeline.cache import ArtifactCache, stable_digest
from repro.serve import (
    Job,
    JobQueue,
    Router,
    ServeApp,
    ServeContext,
    ServerHandle,
    SingleFlight,
    build_context,
    run_sweep_job,
)
from repro.telemetry import Telemetry


def wait_until(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


# -- single-flight coalescing -----------------------------------------------------


class TestSingleFlight:
    def test_sequential_calls_each_execute(self):
        flight = SingleFlight()
        calls = []
        for expected in (1, 2):
            result, leader = flight.do("k", lambda: calls.append(0) or 42)
            assert (result, leader) == (42, True)
            assert len(calls) == expected

    def test_concurrent_burst_executes_once(self):
        flight = SingleFlight()
        n = 8
        barrier = threading.Barrier(n)
        release = threading.Event()
        calls = []
        results = []

        def compute():
            calls.append(threading.get_ident())
            release.wait(5.0)
            return "payload"

        def request():
            barrier.wait(5.0)
            results.append(flight.do("key", compute))

        threads = [threading.Thread(target=request) for _ in range(n)]
        for t in threads:
            t.start()

        def all_parked():
            call = flight._calls.get("key")
            return call is not None and call.waiters == n - 1

        # Hold the leader inside compute until every follower has
        # registered on the in-flight call — otherwise a late arrival
        # legitimately starts a fresh burst of its own.
        assert wait_until(all_parked)
        assert len(calls) == 1
        release.set()
        for t in threads:
            t.join(5.0)
        assert len(calls) == 1
        assert [r[0] for r in results] == ["payload"] * n
        assert sum(leader for _, leader in results) == 1
        assert flight.in_flight() == 0

    def test_leader_exception_shared_then_key_released(self):
        flight = SingleFlight()
        started = threading.Event()
        release = threading.Event()
        errors = []

        def boom():
            started.set()
            release.wait(5.0)
            raise ValueError("cold failure")

        def lead():
            try:
                flight.do("key", boom)
            except ValueError as exc:
                errors.append(str(exc))

        def follow():
            started.wait(5.0)  # guarantees the leader holds the key
            try:
                flight.do("key", lambda: "never runs")
            except ValueError as exc:
                errors.append(str(exc))

        leader = threading.Thread(target=lead)
        follower = threading.Thread(target=follow)
        leader.start()
        follower.start()
        started.wait(5.0)
        assert wait_until(lambda: flight.in_flight() == 1)
        release.set()
        leader.join(5.0)
        follower.join(5.0)
        assert errors == ["cold failure", "cold failure"]
        # The failed key was released: a later call retries fresh.
        result, is_leader = flight.do("key", lambda: "recovered")
        assert (result, is_leader) == ("recovered", True)


# -- job queue --------------------------------------------------------------------


class TestJobQueue:
    def test_lifecycle_done(self):
        queue = JobQueue(lambda job: {"echo": job.payload}, workers=1)
        try:
            job = queue.submit({"x": 1})
            assert job.job_id.startswith("job-00001-")
            assert wait_until(lambda: queue.get(job.job_id).state == "done")
            done = queue.get(job.job_id)
            assert done.result == {"echo": {"x": 1}}
            assert done.to_dict()["wall_s"] >= 0
        finally:
            queue.close()

    def test_failure_is_data(self):
        def explode(job):
            raise RuntimeError("sweep blew up")

        queue = JobQueue(explode, workers=1)
        try:
            job = queue.submit({})
            assert wait_until(lambda: queue.get(job.job_id).state == "failed")
            failed = queue.get(job.job_id)
            assert "sweep blew up" in failed.error
            assert "result" not in failed.to_dict()
        finally:
            queue.close()

    def test_unknown_job(self):
        queue = JobQueue(lambda job: None, workers=1)
        try:
            with pytest.raises(UnknownJobError):
                queue.get("job-zzz")
        finally:
            queue.close()

    def test_backpressure_raises_when_full(self):
        release = threading.Event()
        queue = JobQueue(
            lambda job: release.wait(10.0), workers=1, maxsize=2
        )
        try:
            first = queue.submit({"n": 0})  # occupies the worker
            assert wait_until(
                lambda: queue.get(first.job_id).state == "running"
            )
            queue.submit({"n": 1})
            queue.submit({"n": 2})
            with pytest.raises(JobQueueFullError):
                queue.submit({"n": 3})
        finally:
            release.set()
            queue.close()
        # The rejected job left no trace.
        assert len(queue.jobs()) == 3

    def test_cancel_queued_skips_execution(self):
        release = threading.Event()
        ran = []

        def fn(job):
            ran.append(job.payload["n"])
            release.wait(10.0)

        queue = JobQueue(fn, workers=1, maxsize=4)
        try:
            running = queue.submit({"n": 0})
            assert wait_until(
                lambda: queue.get(running.job_id).state == "running"
            )
            queued = queue.submit({"n": 1})
            assert queue.cancel(queued.job_id).state == "cancelled"
            # Cancelling the running job is refused (state unchanged).
            assert queue.cancel(running.job_id).state == "running"
        finally:
            release.set()
            queue.close()
        assert ran == [0]

    def test_close_drains_queued_jobs(self):
        done = []
        queue = JobQueue(
            lambda job: done.append(job.payload["n"]), workers=1, maxsize=8
        )
        jobs = [queue.submit({"n": i}) for i in range(5)]
        queue.close(drain=True)
        assert sorted(done) == [0, 1, 2, 3, 4]
        assert all(queue.get(j.job_id).state == "done" for j in jobs)

    def test_close_without_drain_cancels_queued(self):
        release = threading.Event()
        queue = JobQueue(
            lambda job: release.wait(10.0), workers=1, maxsize=8
        )
        first = queue.submit({"n": 0})
        assert wait_until(lambda: queue.get(first.job_id).state == "running")
        rest = [queue.submit({"n": i}) for i in range(1, 4)]
        release.set()
        queue.close(drain=False)
        assert queue.get(first.job_id).state == "done"
        assert all(queue.get(j.job_id).state == "cancelled" for j in rest)

    def test_submit_after_close(self):
        queue = JobQueue(lambda job: None, workers=1)
        queue.close()
        with pytest.raises(ServeError):
            queue.submit({})

    def test_validation(self):
        with pytest.raises(ServeError):
            JobQueue(lambda job: None, workers=0)
        with pytest.raises(ServeError):
            JobQueue(lambda job: None, maxsize=0)


# -- router -----------------------------------------------------------------------


class TestRouter:
    def test_match_params_and_order(self):
        router = Router()
        router.add("GET", r"/jobs", "list", lambda: (200, []))
        router.add("GET", r"/jobs/(?P<job_id>[^/]+)", "get", lambda: (200, 0))
        assert router.match("GET", "/jobs").route.name == "list"
        match = router.match("get", "/jobs/j-1")
        assert match.route.name == "get"
        assert match.params == {"job_id": "j-1"}
        assert router.match("GET", "/jobs/a/b") is None
        assert [r.name for r in router.routes()] == ["list", "get"]

    def test_method_discrimination(self):
        router = Router()
        router.add("POST", r"/sweeps", "post", lambda: (202, {}))
        assert router.match("GET", "/sweeps") is None
        assert router.allowed_methods("/sweeps") == ("POST",)
        assert router.allowed_methods("/nowhere") == ()


# -- dispatch (no sockets) --------------------------------------------------------


@pytest.fixture
def ctx(tmp_path):
    context = build_context(
        cache_dir=tmp_path / "cache", job_workers=1, queue_size=2
    )
    yield context
    context.jobs.close(drain=False)


@pytest.fixture
def app(ctx):
    return ServeApp(ctx)


def dispatch(app, method, path, body=None):
    payload = None if body is None else json.dumps(body).encode()
    status, raw = app.dispatch(method, path, payload)
    return status, json.loads(raw)


class TestDispatch:
    def test_health(self, app):
        status, payload = dispatch(app, "GET", "/health")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["corpus"] is False

    def test_unknown_route_404(self, app):
        status, payload = dispatch(app, "GET", "/nope")
        assert status == 404
        assert "no route" in payload["error"]

    def test_wrong_method_405(self, app):
        status, payload = dispatch(app, "DELETE", "/sweeps")
        assert status == 405
        assert payload["allowed"] == ["POST"]

    def test_bad_json_body_400(self, app):
        status, raw = app.dispatch("POST", "/sweeps", b"{not json")
        assert status == 400
        assert "not valid JSON" in json.loads(raw)["error"]

    def test_sweep_body_validation_400(self, app):
        for body in (
            ["not", "a", "dict"],
            {"grid": "flux=9"},
            {"grid": 7},
            {"fleet": 0},
            {"replications": "many"},
            {"warp": 9},
        ):
            status, payload = dispatch(app, "POST", "/sweeps", body)
            assert status == 400, body
            assert "error" in payload

    def test_unknown_study_endpoint_404(self, app):
        status, payload = dispatch(app, "GET", "/study/fig9")
        assert status == 404
        assert "fig2" in payload["available"]

    def test_corpus_without_store_503(self, app):
        for path in (
            "/corpus/stats",
            "/corpus/query?q=workflow",
            "/corpus/by_year",
            "/corpus/by_venue",
        ):
            status, payload = dispatch(app, "GET", path)
            assert status == 503, path
            assert "--store" in payload["error"]

    def test_unknown_job_404(self, app):
        status, payload = dispatch(app, "GET", "/jobs/job-404-cafe")
        assert status == 404
        assert "unknown job" in payload["error"]

    def test_trailing_slash_normalized(self, app):
        status, _ = dispatch(app, "GET", "/health/")
        assert status == 200

    def test_metrics_instrumented(self, app):
        dispatch(app, "GET", "/health")
        status, snapshot = dispatch(app, "GET", "/metrics")
        assert status == 200
        # The snapshot is taken before the in-flight /metrics request is
        # itself observed, so it covers everything *prior* to it.
        assert snapshot["serve.requests"]["value"] == 1
        histogram = snapshot["serve.request_seconds.health"]
        assert histogram["count"] == 1
        assert histogram["max"] > 0
        dispatch(app, "GET", "/nope")
        _, snapshot = dispatch(app, "GET", "/metrics")
        assert snapshot["serve.errors"]["value"] == 1
        assert snapshot["serve.request_seconds.unrouted"]["count"] == 1

    def test_access_log_structured(self, app, ctx):
        dispatch(app, "GET", "/health")
        events = [
            e for e in ctx.telemetry.log.events() if e.event == "serve.access"
        ]
        assert events
        assert events[-1].fields["route"] == "health"
        assert events[-1].fields["status"] == 200


class TestStudyEndpoints:
    def test_payload_shapes(self, app):
        status, table1 = dispatch(app, "GET", "/study/table1")
        assert status == 200
        assert table1["header"]
        assert all(len(r) == len(table1["header"]) for r in table1["rows"])
        for name in ("fig2", "fig3", "fig4"):
            status, series = dispatch(app, "GET", f"/study/{name}")
            assert status == 200
            assert series["total"] == sum(c for _, c in series["series"])
        status, report = dispatch(app, "GET", "/study/report")
        assert status == 200
        assert len(report["text"]) > 200

    def test_warm_requests_hit_payload_cache(self, app, ctx):
        dispatch(app, "GET", "/study/table1")
        computations = ctx.telemetry.metrics.counter(
            "serve.study.computations"
        )
        before = computations.summary()["value"]
        hits_before = ctx.cache.hits
        for _ in range(5):
            assert dispatch(app, "GET", "/study/table1")[0] == 200
        assert computations.summary()["value"] == before
        assert ctx.cache.hits >= hits_before + 5

    def test_cold_burst_coalesces_to_one_computation(self, app, ctx):
        n = 8
        barrier = threading.Barrier(n)
        statuses = []

        def request():
            barrier.wait(10.0)
            statuses.append(dispatch(app, "GET", "/study/table2")[0])

        threads = [threading.Thread(target=request) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30.0)
        assert statuses == [200] * n
        snapshot = ctx.telemetry.metrics.snapshot()
        assert snapshot["serve.study.computations"]["value"] == 1
        # The rendered payload was stored exactly once per endpoint.
        key = stable_digest("serve.study", ctx.seed, "table2")
        assert ctx.cache.get(key) is not None


# -- the real HTTP server ---------------------------------------------------------


def get_json(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, json.loads(response.read())


def post_json(url, body, method="POST"):
    request = urllib.request.Request(
        url, data=json.dumps(body).encode(), method=method
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read())


class TestServerHandle:
    def test_health_over_http(self, ctx):
        with ServerHandle(ctx, workers=2) as handle:
            assert handle.url.startswith("http://127.0.0.1:")
            status, payload = get_json(handle.url + "/health")
            assert (status, payload["status"]) == (200, "ok")

    def test_http_error_statuses(self, ctx):
        with ServerHandle(ctx, workers=2) as handle:
            with pytest.raises(urllib.error.HTTPError) as err:
                get_json(handle.url + "/jobs/job-00000-missing")
            assert err.value.code == 404
            request = urllib.request.Request(
                handle.url + "/sweeps", data=b"nope", method="POST"
            )
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(request, timeout=10)
            assert err.value.code == 400

    def test_close_is_idempotent(self, ctx):
        handle = ServerHandle(ctx, workers=2)
        handle.close()
        handle.close()

    def test_corpus_endpoints_from_worker_threads(self, tmp_path):
        """The store is opened on the main thread but served from pool
        worker threads — the exact cross-thread SQLite path a
        same-thread dispatch() test never exercises."""
        from repro.corpus.store import CorpusStore
        from repro.data.bibliography import paper_bibliography

        store_path = tmp_path / "corpus.db"
        with CorpusStore(store_path) as store:
            store.extend(list(paper_bibliography()))
        context = build_context(
            store_path=store_path, job_workers=1, queue_size=2
        )
        try:
            with ServerHandle(context, workers=4) as handle:
                results = []

                def client() -> None:
                    for path in (
                        "/corpus/stats",
                        "/corpus/by_year",
                        "/corpus/by_venue",
                        "/corpus/query?q=workflow&limit=3",
                    ):
                        results.append(get_json(handle.url + path))

                threads = [
                    threading.Thread(target=client) for _ in range(4)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(30.0)
            assert len(results) == 16
            assert all(status == 200 for status, _ in results)
            stats = next(
                payload for _, payload in results if "records" in payload
            )
            assert stats["records"] > 0
        finally:
            context.jobs.close(drain=False)
            context.store.close()

    def test_graceful_close_drains_jobs(self, tmp_path):
        telemetry = Telemetry()
        done = []
        context = ServeContext(
            cache=ArtifactCache(telemetry=telemetry),
            telemetry=telemetry,
            jobs=JobQueue(
                lambda job: done.append(job.payload["n"]) or time.sleep(0.05),
                workers=1,
                maxsize=8,
            ),
        )
        with ServerHandle(context, workers=2) as handle:
            assert get_json(handle.url + "/health")[0] == 200
            jobs = [context.jobs.submit({"n": i}) for i in range(4)]
        # Leaving the with-block is the graceful shutdown: every
        # submitted job ran to completion before close() returned.
        assert sorted(done) == [0, 1, 2, 3]
        assert all(
            context.jobs.get(j.job_id).state == "done" for j in jobs
        )


class TestSweepJobs:
    def test_http_sweep_bit_identical_to_cli_path_and_ledgered(
        self, tmp_path
    ):
        from repro.continuum import build_sweep_spec, run_sweep

        spec_kwargs = dict(
            grid="scheduler=heft,round_robin",
            fleet=2,
            replications=5,
            seed=7,
        )
        direct = run_sweep(build_sweep_spec(**spec_kwargs)).to_dict()

        context = build_context(
            cache_dir=tmp_path / "cache",
            runs_dir=tmp_path / "runs",
            record=True,
            job_workers=1,
            queue_size=4,
        )
        with ServerHandle(context, workers=2) as handle:
            status, job = post_json(
                handle.url + "/sweeps", dict(spec_kwargs, workers=0)
            )
            assert status == 202
            assert job["state"] == "queued"
            assert wait_until(
                lambda: get_json(handle.url + "/jobs/" + job["job"])[1][
                    "state"
                ]
                in ("done", "failed"),
                timeout=120.0,
                interval=0.1,
            )
            _, finished = get_json(handle.url + "/jobs/" + job["job"])
            assert finished["state"] == "done"
            # Bit-identical to the direct (CLI-path) sweep.
            assert finished["result"] == direct
            _, listing = get_json(handle.url + "/jobs")
            assert [j["job"] for j in listing["jobs"]] == [job["job"]]
        # ... and the job landed in the run ledger like `repro sweep
        # --record` would: same kind, same artifact digest.
        records = RunRegistry(tmp_path / "runs").runs()
        assert [r.kind for r in records] == ["mc-sweep"]
        from repro.obs import build_sweep_record

        expected = build_sweep_record(
            run_sweep(build_sweep_spec(**spec_kwargs))
        )
        assert (
            records[0].artifacts["cells"].sha256
            == expected.artifacts["cells"].sha256
        )

    def test_queue_full_gives_429_and_cancel_roundtrip(self, tmp_path):
        telemetry = Telemetry()
        release = threading.Event()
        context = ServeContext(
            cache=ArtifactCache(telemetry=telemetry),
            telemetry=telemetry,
            jobs=JobQueue(
                lambda job: release.wait(20.0), workers=1, maxsize=1
            ),
        )
        try:
            with ServerHandle(context, workers=2) as handle:
                _, running = post_json(handle.url + "/sweeps", {})
                assert wait_until(
                    lambda: context.jobs.get(running["job"]).state
                    == "running"
                )
                _, queued = post_json(handle.url + "/sweeps", {})
                with pytest.raises(urllib.error.HTTPError) as err:
                    post_json(handle.url + "/sweeps", {})
                assert err.value.code == 429
                # Cancel the queued job; cancelling again conflicts.
                status, cancelled = post_json(
                    handle.url + "/jobs/" + queued["job"], {}, "DELETE"
                )
                assert (status, cancelled["state"]) == (200, "cancelled")
                with pytest.raises(urllib.error.HTTPError) as err:
                    post_json(
                        handle.url + "/jobs/" + running["job"], {}, "DELETE"
                    )
                assert err.value.code == 409
                release.set()
        finally:
            release.set()


# -- concurrency guarantees under the worker pool ---------------------------------


class TestConcurrentRunRegistry:
    def test_threaded_appends_all_land(self, tmp_path):
        from tests.test_obs import make_record

        registry = RunRegistry(tmp_path)
        n_threads, per_thread = 8, 6
        barrier = threading.Barrier(n_threads)

        def append(worker):
            barrier.wait(10.0)
            for i in range(per_thread):
                registry.record(make_record(f"run-{worker:02d}-{i:02d}"))

        threads = [
            threading.Thread(target=append, args=(w,))
            for w in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30.0)
        runs = registry.runs()
        assert len(runs) == n_threads * per_thread
        # Every line parsed — interleaved appends never tore a record.
        assert sorted({r.run_id for r in runs}) == sorted(
            f"run-{w:02d}-{i:02d}"
            for w in range(n_threads)
            for i in range(per_thread)
        )

    def test_threaded_appends_with_concurrent_reads(self, tmp_path):
        from tests.test_obs import make_record

        registry = RunRegistry(tmp_path)
        stop = threading.Event()
        seen = []

        def reader():
            while not stop.is_set():
                seen.append(len(registry.runs()))

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            for i in range(30):
                registry.record(make_record(f"run-{i:03d}"))
        finally:
            stop.set()
            thread.join(10.0)
        # Reads observed a monotonically growing, never-corrupt ledger.
        assert seen == sorted(seen)
        assert len(registry.runs()) == 30


class TestConcurrentArtifactCache:
    def test_get_store_races_disk_backed(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        n_threads = 8
        rounds = 25
        barrier = threading.Barrier(n_threads)
        mismatches = []

        def hammer(worker):
            barrier.wait(10.0)
            for i in range(rounds):
                key = stable_digest("contended", i % 5)
                cache.store(key, {"round": i % 5})
                value = cache.get(key)
                if value is not None and value != {"round": i % 5}:
                    mismatches.append((worker, i, value))
                private = stable_digest("private", worker, i)
                cache.store(private, worker * 1000 + i)
                if cache.get(private) != worker * 1000 + i:
                    mismatches.append((worker, i, "private"))

        threads = [
            threading.Thread(target=hammer, args=(w,))
            for w in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60.0)
        assert mismatches == []
        # Disk artifacts survived the races and reload cleanly.
        reloaded = ArtifactCache(tmp_path / "cache")
        for i in range(5):
            assert reloaded.get(stable_digest("contended", i)) == {
                "round": i
            }

    def test_singleflight_with_cache_single_store(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        flight = SingleFlight()
        key = stable_digest("expensive")
        n = 6
        barrier = threading.Barrier(n)

        def compute():
            value = {"expensive": True}
            cache.store(key, value)
            return value

        def request():
            barrier.wait(10.0)
            cached = cache.get(key)
            if cached is None:
                flight.do(key, compute)

        threads = [threading.Thread(target=request) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10.0)
        assert cache.stores == 1
        assert cache.get(key) == {"expensive": True}


# -- context factory --------------------------------------------------------------


class TestBuildContext:
    def test_wires_store_and_registry(self, tmp_path):
        from repro.corpus.store import CorpusStore
        from repro.data.bibliography import paper_bibliography

        store_path = tmp_path / "corpus.db"
        with CorpusStore(store_path) as store:
            store.extend(list(paper_bibliography()))
        context = build_context(
            store_path=store_path,
            runs_dir=tmp_path / "runs",
            record=True,
            job_workers=1,
        )
        try:
            app = ServeApp(context)
            status, stats = dispatch(app, "GET", "/corpus/stats")
            assert status == 200
            assert stats["records"] > 0
            status, by_year = dispatch(app, "GET", "/corpus/by_year")
            assert status == 200
            assert by_year["total"] == stats["records"]
            status, hits = dispatch(
                app, "GET", "/corpus/query?q=workflow&limit=3"
            )
            assert status == 200
            assert hits["count"] >= len(hits["results"])
            assert len(hits["results"]) <= 3
            status, _ = dispatch(app, "GET", "/corpus/query")
            assert status == 400
            status, payload = dispatch(
                app, "GET", "/corpus/query?q=((broken"
            )
            assert status == 400
        finally:
            context.jobs.close(drain=False)
            context.store.close()

    def test_run_sweep_job_roundtrip(self, tmp_path):
        context = build_context(job_workers=1)
        try:
            result = run_sweep_job(
                Job(
                    job_id="job-test",
                    payload={
                        "grid": "scheduler=heft",
                        "fleet": 1,
                        "replications": 3,
                        "seed": 0,
                        "workers": 0,
                    },
                ),
                context,
            )
            assert result["n_replications_run"] == 3
        finally:
            context.jobs.close(drain=False)


class TestAdaptiveSweepEndpoint:
    """POST /sweeps with the sequential-stopping knobs (target_ci /
    max_replications): invalid combos are client errors (400), valid
    ones run the adaptive engine and report the savings."""

    def test_invalid_adaptive_combos_400(self, app):
        for body in (
            {"max_replications": 50},            # needs target_ci
            {"target_ci": 0.0},                  # must be > 0
            {"target_ci": -0.1},
            {"target_ci": "tight"},              # wrong type
            {"target_ci": True},                 # bool is not a float
            {"target_ci": 0.05, "max_replications": 0},
            {"target_ci": 0.05, "max_replications": 1.5},
            {"target_ci": 0.05, "primary_metric": "vibes"},
        ):
            status, payload = dispatch(app, "POST", "/sweeps", body)
            assert status == 400, body
            assert "error" in payload

    def test_adaptive_job_runs_and_reports_savings(self, app):
        from repro.continuum import build_sweep_spec, run_sweep

        # The default round size is 64, so a loose target lets every
        # cell stop after its first round while the cap stays at 200.
        body = {
            "grid": "scheduler=heft,round_robin",
            "fleet": 2,
            "replications": 200,
            "seed": 7,
            "target_ci": 0.1,
            "max_replications": 200,
            "workers": 0,
        }
        status, job = dispatch(app, "POST", "/sweeps", body)
        assert status == 202
        assert wait_until(
            lambda: dispatch(app, "GET", "/jobs/" + job["job"])[1]["state"]
            in ("done", "failed"),
            timeout=120.0,
            interval=0.1,
        )
        _, finished = dispatch(app, "GET", "/jobs/" + job["job"])
        assert finished["state"] == "done"
        direct = run_sweep(
            build_sweep_spec(
                grid=body["grid"], fleet=2, replications=200,
                seed=7, target_ci=0.1, max_replications=200,
            )
        ).to_dict()
        assert finished["result"] == direct
        result = finished["result"]
        assert result["n_replications_budget"] == 200 * len(result["cells"])
        assert result["n_replications_run"] < result["n_replications_budget"]
