"""Unit tests for the adaptive stats fan-out engine."""

import numpy as np
import pytest

from repro.errors import StatsError
from repro.obs import RunRegistry
from repro.pipeline.cache import ArtifactCache
from repro.stats import (
    StatCell,
    StatSpec,
    StatTask,
    adaptive_bootstrap_share_ci,
    adaptive_permutation_mean_test,
    adaptive_permutation_tvd_test,
    run_stat_sweep,
    share_ci_tasks,
)
from repro.stats.frequency import FrequencyTable
from repro.stats.inference import bootstrap_share_ci, permutation_tvd_test
from repro.telemetry import Telemetry

COUNTS = (120, 45, 30, 15)


def share_task(name="share", label_index=0):
    return StatTask(name=name, kind="bootstrap_share", counts=COUNTS,
                    label_index=label_index)


class TestStatTaskValidation:
    def test_unknown_kind(self):
        with pytest.raises(StatsError):
            StatTask(name="x", kind="jackknife", counts=COUNTS)

    def test_name_required(self):
        with pytest.raises(StatsError):
            StatTask(name="", kind="bootstrap_share", counts=COUNTS)

    def test_bootstrap_needs_counts(self):
        with pytest.raises(StatsError):
            StatTask(name="x", kind="bootstrap_share")

    def test_label_index_in_range(self):
        with pytest.raises(StatsError):
            StatTask(name="x", kind="bootstrap_share", counts=COUNTS,
                     label_index=4)

    def test_confidence_in_open_interval(self):
        with pytest.raises(StatsError):
            StatTask(name="x", kind="bootstrap_share", counts=COUNTS,
                     confidence=1.0)

    def test_permutation_needs_both_samples(self):
        with pytest.raises(StatsError):
            StatTask(name="x", kind="permutation_tvd", a=COUNTS)

    def test_tvd_needs_matching_categories(self):
        with pytest.raises(StatsError):
            StatTask(name="x", kind="permutation_tvd", a=(1, 2, 3), b=(1, 2))

    def test_mean_needs_finite_samples(self):
        with pytest.raises(StatsError):
            StatTask(name="x", kind="permutation_mean",
                     a=(1.0, float("nan")), b=(2.0, 3.0))

    def test_counts_accept_frequency_table(self):
        table = FrequencyTable.from_observations(["a"] * 3 + ["b"] * 7)
        task = StatTask(name="x", kind="bootstrap_share", counts=table)
        assert sum(task.counts) == 10


class TestStatSpecValidation:
    def test_needs_tasks(self):
        with pytest.raises(StatsError):
            StatSpec(tasks=())

    def test_names_must_be_unique(self):
        with pytest.raises(StatsError):
            StatSpec(tasks=(share_task("a"), share_task("a")))

    def test_max_draws_requires_target_se(self):
        with pytest.raises(StatsError):
            StatSpec(tasks=(share_task(),), max_draws=5000)

    def test_target_se_positive_finite(self):
        for bad in (0.0, -1e-3, float("inf")):
            with pytest.raises(StatsError):
                StatSpec(tasks=(share_task(),), target_se=bad)

    def test_draw_plan_modes(self):
        fixed = StatSpec(tasks=(share_task(),), draws=2000)
        assert not fixed.adaptive
        assert fixed.draw_cap == 2000
        assert fixed.draw_plan()["mode"] == "fixed"
        adaptive = StatSpec(tasks=(share_task(),), draws=2000,
                            target_se=1e-3, max_draws=20_000)
        assert adaptive.adaptive
        assert adaptive.draw_cap == 20_000
        assert adaptive.draw_plan()["mode"] == "adaptive"


class TestRunStatSweep:
    def test_deterministic(self):
        spec = StatSpec(
            tasks=(
                share_task("share:a", 0),
                StatTask(name="tvd", kind="permutation_tvd",
                         a=(30, 20, 10), b=(25, 25, 10)),
                StatTask(name="mean", kind="permutation_mean",
                         a=(1.0, 2.0, 3.0, 4.0), b=(2.5, 3.5, 4.5, 5.5)),
            ),
            seed=7, draws=2000, round_size=500,
        )
        first = run_stat_sweep(spec)
        second = run_stat_sweep(spec)
        assert first.to_dict() == second.to_dict()
        assert first["tvd"].kind == "permutation_tvd"
        with pytest.raises(KeyError):
            first["missing"]

    def test_adaptive_stops_early_and_reports_savings(self):
        spec = StatSpec(
            tasks=tuple(
                share_task(f"share:{i}", i) for i in range(len(COUNTS))
            ),
            seed=7, draws=50_000, round_size=1000,
            target_se=2e-3, max_draws=50_000,
        )
        result = run_stat_sweep(spec)
        assert result.n_replications_budget == 50_000 * len(COUNTS)
        assert 0 < result.n_replications_run < result.n_replications_budget
        assert result.n_replications_saved == (
            result.n_replications_budget - result.n_replications_run
        )
        for cell in result.cells:
            assert cell.se <= 2e-3

    def test_adaptive_prefix_matches_fixed_stream(self):
        """A task that stopped at n draws saw exactly the first n draws
        of the capped run — the entropy-reuse contract."""
        adaptive = run_stat_sweep(StatSpec(
            tasks=(share_task(),), seed=7, draws=50_000,
            round_size=1000, target_se=2e-3,
        )).cells[0]
        fixed = run_stat_sweep(StatSpec(
            tasks=(share_task(),), seed=7, draws=adaptive.draws,
            round_size=1000,
        )).cells[0]
        assert fixed.to_dict() == adaptive.to_dict()

    def test_estimates_agree_with_one_shot_inference(self):
        result = run_stat_sweep(StatSpec(
            tasks=(
                share_task("share", 0),
                StatTask(name="tvd", kind="permutation_tvd",
                         a=(300, 50, 20), b=(100, 150, 90)),
            ),
            seed=3, draws=20_000, round_size=2000,
        ))
        share = result["share"].estimate
        low, high = bootstrap_share_ci(COUNTS, 0, n_resamples=20_000, seed=3)
        assert share["share"] == pytest.approx(COUNTS[0] / sum(COUNTS))
        assert share["low"] == pytest.approx(low, abs=0.02)
        assert share["high"] == pytest.approx(high, abs=0.02)
        tvd = result["tvd"].estimate
        oneshot_tvd = permutation_tvd_test(
            (300, 50, 20), (100, 150, 90), n_permutations=5000, seed=3
        )
        assert tvd["statistic"] == pytest.approx(oneshot_tvd.statistic)
        assert tvd["p_value"] < 0.01  # clearly different distributions

    def test_cache_round_trip(self):
        cache = ArtifactCache()
        spec = StatSpec(tasks=(share_task(),), seed=7, draws=2000,
                        round_size=1000)
        cold = run_stat_sweep(spec, cache=cache)
        warm = run_stat_sweep(spec, cache=cache)
        assert cold.computed and not cold.cached
        assert warm.cached and not warm.computed
        assert warm.n_replications_run == 0
        assert warm.cells[0].to_dict() == cold.cells[0].to_dict()

    def test_draw_plan_is_part_of_cache_identity(self):
        cache = ArtifactCache()
        run_stat_sweep(StatSpec(tasks=(share_task(),), seed=7, draws=2000),
                       cache=cache)
        result = run_stat_sweep(
            StatSpec(tasks=(share_task(),), seed=7, draws=2000,
                     target_se=1e-2),
            cache=cache,
        )
        assert result.computed  # adaptive plan is a different experiment

    def test_ledger_record(self, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        telemetry = Telemetry()
        result = run_stat_sweep(
            StatSpec(tasks=(share_task(),), seed=7, draws=2000,
                     round_size=500, target_se=1e-4),
            telemetry=telemetry, registry=registry,
        )
        record = registry.last(1)[0]
        assert record.kind == "stat-sweep"
        assert float(record.meta["target_se"]) == 1e-4
        assert record.metrics["mc.replications"] == (
            result.n_replications_run
        )
        assert record.metrics["mc.replications_budget"] == (
            result.n_replications_budget
        )
        snapshot = telemetry.metrics.snapshot()
        assert snapshot["stat.draws"]["value"] == result.n_replications_run

    def test_zero_variance_mean_sample(self):
        result = run_stat_sweep(StatSpec(
            tasks=(StatTask(name="flat", kind="permutation_mean",
                            a=(2.0, 2.0, 2.0), b=(2.0, 2.0)),),
            seed=1, draws=1000, round_size=1000,
        ))
        assert result["flat"].estimate["p_value"] > 0.99


class TestFrontDoors:
    def test_share_ci_tasks_covers_every_label(self):
        table = FrequencyTable.from_observations(
            ["heft"] * 12 + ["energy"] * 7 + ["rr"] * 3
        )
        tasks = share_ci_tasks(table, prefix="fig2")
        assert [t.name for t in tasks] == [
            f"fig2:{label}" for label in table.labels
        ]
        assert all(t.kind == "bootstrap_share" for t in tasks)
        spec = StatSpec(tasks=tasks, seed=2, draws=1000, round_size=500)
        result = run_stat_sweep(spec)
        shares = [cell.estimate["share"] for cell in result.cells]
        assert sum(shares) == pytest.approx(1.0)

    def test_adaptive_bootstrap_share_ci(self):
        cell = adaptive_bootstrap_share_ci(COUNTS, 0, target_se=2e-3,
                                           max_draws=50_000, seed=5)
        assert cell.kind == "bootstrap_share"
        assert cell.estimate["low"] < cell.estimate["share"]
        assert cell.estimate["share"] < cell.estimate["high"]
        assert cell.draws < 50_000

    def test_adaptive_permutation_tvd(self):
        cell = adaptive_permutation_tvd_test(
            (300, 50, 20), (100, 150, 90),
            target_se=5e-3, max_draws=20_000, seed=5,
        )
        assert cell.estimate["p_value"] < 0.01

    def test_adaptive_permutation_mean(self):
        rng = np.random.default_rng(5)
        a = rng.normal(0.0, 1.0, size=40)
        b = rng.normal(0.05, 1.0, size=40)  # nearly identical means
        cell = adaptive_permutation_mean_test(
            a, b, target_se=1e-2, max_draws=20_000, seed=5
        )
        assert cell.estimate["p_value"] > 0.05


class TestStatCellSerialization:
    def test_round_trip(self):
        cell = run_stat_sweep(
            StatSpec(tasks=(share_task(),), seed=7, draws=1000,
                     round_size=1000)
        ).cells[0]
        clone = StatCell.from_dict(cell.to_dict())
        assert clone.to_dict() == cell.to_dict()
        assert clone.cell_id == "bootstrap_share|share"

    def test_malformed_payload(self):
        with pytest.raises(StatsError):
            StatCell.from_dict({"name": "x", "kind": "bootstrap_share"})
