"""Unit tests for the tool classifiers and their evaluation."""

import numpy as np
import pytest

from repro.core.classification import (
    CentroidClassifier,
    ClassificationResult,
    EnsembleClassifier,
    KeywordClassifier,
    evaluate_classifier,
)
from repro.core.taxonomy import Category, ClassificationScheme, workflow_directions
from repro.errors import ClassificationError, ValidationError


@pytest.fixture(scope="module")
def directions():
    return workflow_directions()


class TestKeywordClassifier:
    def test_obvious_orchestration(self, directions):
        clf = KeywordClassifier(directions)
        result = clf.classify(
            "A TOSCA orchestrator for Kubernetes deployment and placement."
        )
        assert result.label == "orchestration"
        assert result.confidence > 0.5

    def test_stemmed_matching(self, directions):
        # "orchestrating" should hit the "orchestration" keyword via stemming.
        clf = KeywordClassifier(directions)
        result = clf.classify("a system orchestrating containers")
        assert result.scores["orchestration"] >= 1.0

    def test_empty_text_rejected(self, directions):
        with pytest.raises(ClassificationError):
            KeywordClassifier(directions).classify("   ")

    def test_no_signal_falls_back_deterministically(self, directions):
        clf = KeywordClassifier(directions)
        result = clf.classify("completely unrelated gibberish zzz qqq")
        assert result.label == directions.keys[0]
        assert result.confidence == pytest.approx(1.0 / len(directions))

    def test_classify_many_matches_single(self, directions):
        clf = KeywordClassifier(directions)
        texts = ["TOSCA orchestration", "energy power consumption"]
        batch = clf.classify_many(texts)
        singles = [clf.classify(t) for t in texts]
        assert [b.label for b in batch] == [s.label for s in singles]

    def test_empty_scheme_rejected(self):
        with pytest.raises(ValidationError):
            KeywordClassifier(ClassificationScheme())

    def test_recovers_published_table1(self, tools, directions):
        clf = KeywordClassifier(directions)
        predictions = clf.classify_many([t.description for t in tools])
        gold = [t.primary_direction for t in tools]
        evaluation = evaluate_classifier(predictions, gold, directions)
        assert evaluation.accuracy == 1.0


class TestCentroidClassifier:
    def test_high_accuracy_on_dataset(self, tools, directions):
        clf = CentroidClassifier(directions)
        predictions = clf.classify_many([t.description for t in tools])
        gold = [t.primary_direction for t in tools]
        evaluation = evaluate_classifier(predictions, gold, directions)
        assert evaluation.accuracy >= 0.85  # one known miss (CAPIO) tolerated

    def test_seeds_improve_or_keep_fit(self, tools, directions):
        seeds = [(t.description, t.primary_direction) for t in tools]
        clf = CentroidClassifier(directions, seeds=seeds)
        predictions = clf.classify_many([t.description for t in tools])
        gold = [t.primary_direction for t in tools]
        assert evaluate_classifier(predictions, gold, directions).accuracy >= 0.9

    def test_bad_seed_label_rejected(self, directions):
        with pytest.raises(ValidationError):
            CentroidClassifier(directions, seeds=[("text", "nope")])

    def test_batch_empty_list(self, directions):
        assert CentroidClassifier(directions).classify_many([]) == []

    def test_batch_rejects_empty_text(self, directions):
        with pytest.raises(ClassificationError):
            CentroidClassifier(directions).classify_many(["ok", " "])


class TestEnsembleClassifier:
    def test_agrees_with_strong_members(self, directions):
        ensemble = EnsembleClassifier(
            [KeywordClassifier(directions), CentroidClassifier(directions)]
        )
        result = ensemble.classify("TOSCA orchestrator for multi-cloud deployment")
        assert result.label == "orchestration"

    def test_weights_must_be_positive(self, directions):
        with pytest.raises(ValidationError):
            EnsembleClassifier([KeywordClassifier(directions)], weights=[0.0])

    def test_weight_count_must_match(self, directions):
        with pytest.raises(ValidationError):
            EnsembleClassifier([KeywordClassifier(directions)], weights=[1.0, 2.0])

    def test_members_must_share_scheme_keys(self, directions):
        other = ClassificationScheme([Category("x", "X", keywords=("x",))])
        with pytest.raises(ValidationError):
            EnsembleClassifier(
                [KeywordClassifier(directions), KeywordClassifier(other)]
            )

    def test_empty_ensemble_rejected(self):
        with pytest.raises(ValidationError):
            EnsembleClassifier([])


class TestClassificationResult:
    def test_top_sorted(self):
        result = ClassificationResult(
            "a", {"a": 3.0, "b": 1.0, "c": 2.0}, 0.5
        )
        assert [k for k, _ in result.top(2)] == ["a", "c"]


class TestEvaluation:
    def test_confusion_and_per_class(self, directions):
        predictions = [
            ClassificationResult("orchestration", {}, 1.0),
            ClassificationResult("orchestration", {}, 1.0),
            ClassificationResult("energy-efficiency", {}, 1.0),
        ]
        gold = ["orchestration", "energy-efficiency", "energy-efficiency"]
        evaluation = evaluate_classifier(predictions, gold, directions)
        assert evaluation.accuracy == pytest.approx(2 / 3)
        orch = directions.index("orchestration")
        energy = directions.index("energy-efficiency")
        assert evaluation.confusion[energy, orch] == 1
        assert evaluation.per_class["orchestration"]["recall"] == 1.0
        assert evaluation.per_class["energy-efficiency"]["recall"] == pytest.approx(0.5)
        assert evaluation.misclassified == ((1, "energy-efficiency", "orchestration"),)

    def test_confusion_is_readonly(self, directions):
        predictions = [ClassificationResult("orchestration", {}, 1.0)]
        evaluation = evaluate_classifier(predictions, ["orchestration"], directions)
        with pytest.raises(ValueError):
            evaluation.confusion[0, 0] = 5

    def test_length_mismatch_rejected(self, directions):
        with pytest.raises(ValidationError):
            evaluate_classifier([], ["orchestration"], directions)

    def test_gold_outside_scheme_rejected(self, directions):
        predictions = [ClassificationResult("orchestration", {}, 1.0)]
        with pytest.raises(ValidationError):
            evaluate_classifier(predictions, ["nope"], directions)

    def test_macro_f1_perfect(self, directions):
        predictions = [
            ClassificationResult(k, {}, 1.0) for k in directions.keys
        ]
        evaluation = evaluate_classifier(
            predictions, list(directions.keys), directions
        )
        assert evaluation.macro_f1() == 1.0
