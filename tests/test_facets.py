"""Unit tests for multi-faceted classification and the cross-facet map."""

import pytest

from repro.core.classification import KeywordClassifier
from repro.core.facets import FacetedClassification, facet_matrix, research_type_facet
from repro.core.taxonomy import workflow_directions
from repro.data.bibliography import paper_bibliography
from repro.errors import TaxonomyError, UnknownCategoryError, ValidationError


@pytest.fixture
def faceted():
    return FacetedClassification({
        "direction": workflow_directions(),
        "type": research_type_facet(),
    })


class TestResearchTypeFacet:
    def test_wieringa_categories(self):
        scheme = research_type_facet()
        assert scheme.keys == (
            "validation-research", "evaluation-research",
            "solution-proposal", "philosophical", "experience",
        )
        assert scheme.facet.key == "research-type"

    def test_classifies_a_mapping_study_as_philosophical(self):
        classifier = KeywordClassifier(research_type_facet())
        result = classifier.classify(
            "A systematic mapping study building a taxonomy and roadmap "
            "of future research directions."
        )
        assert result.label == "philosophical"

    def test_classifies_benchmarked_prototype_as_validation(self):
        classifier = KeywordClassifier(research_type_facet())
        result = classifier.classify(
            "We benchmark a prototype in simulation experiments and "
            "evaluate synthetic workloads."
        )
        assert result.label == "validation-research"


class TestFacetedClassification:
    def test_record_and_lookup(self, faceted):
        faceted.record("x", direction="orchestration",
                       type="solution-proposal")
        assert faceted.label_of("x", "direction") == "orchestration"
        assert faceted.complete_items() == ("x",)

    def test_partial_labelling(self, faceted):
        faceted.record("x", direction="orchestration")
        assert faceted.complete_items() == ()
        with pytest.raises(ValidationError):
            faceted.label_of("x", "type")

    def test_relabel_rejected(self, faceted):
        faceted.record("x", direction="orchestration")
        with pytest.raises(ValidationError):
            faceted.record("x", direction="energy-efficiency")

    def test_unknown_facet_and_label(self, faceted):
        with pytest.raises(TaxonomyError):
            faceted.record("x", ghost="anything")
        with pytest.raises(UnknownCategoryError):
            faceted.record("x", direction="not-a-direction")

    def test_needs_facets(self):
        with pytest.raises(ValidationError):
            FacetedClassification({})

    def test_distribution(self, faceted):
        faceted.record("a", direction="orchestration", type="solution-proposal")
        faceted.record("b", direction="orchestration", type="philosophical")
        table = faceted.distribution("direction")
        assert table["orchestration"] == 2
        assert table.total == 2


class TestFacetMatrix:
    def test_counts(self, faceted):
        faceted.record("a", direction="orchestration", type="solution-proposal")
        faceted.record("b", direction="orchestration", type="solution-proposal")
        faceted.record("c", direction="energy-efficiency", type="philosophical")
        matrix, rows, cols = facet_matrix(faceted, "direction", "type")
        assert matrix.sum() == 3
        assert matrix[rows.index("orchestration"),
                      cols.index("solution-proposal")] == 2

    def test_no_jointly_labelled_items(self, faceted):
        faceted.record("a", direction="orchestration")
        with pytest.raises(ValidationError):
            facet_matrix(faceted, "direction", "type")

    def test_full_map_over_bibliography(self, faceted):
        direction_clf = KeywordClassifier(workflow_directions())
        type_clf = KeywordClassifier(research_type_facet())
        for pub in paper_bibliography():
            text = pub.searchable_text()
            faceted.record(
                pub.key,
                direction=direction_clf.classify(text).label,
                type=type_clf.classify(text).label,
            )
        matrix, _, _ = facet_matrix(faceted, "direction", "type")
        assert matrix.sum() == 49
        # The map renders as the canonical SMS bubble chart.
        from repro.viz.matrix import bubble_plot

        doc = bubble_plot(
            matrix,
            list(workflow_directions().names),
            list(research_type_facet().names),
        )
        import xml.dom.minidom

        xml.dom.minidom.parseString(doc.render())
