"""Unit tests for the derived report sections."""

from repro import run_icsc_study, workflow_directions
from repro.reporting import future_work_section, study_report


class TestFutureWork:
    def test_integration_pairs_listed(self, tools, applications, scheme):
        section = future_work_section(tools, applications, scheme)
        assert "CAPIO + Nethuns" in section
        assert "INDIGO + Liqo" in section
        assert "co-selected by 2 applications" in section

    def test_collaborations_listed(self, tools, applications, scheme):
        section = future_work_section(tools, applications, scheme)
        assert "UNICAL + UNITO" in section
        # The UNIPI+UNITO pairing covers all five directions.
        assert "UNIPI + UNITO" in section
        assert "Energy efficiency" in section


class TestFullReportContent:
    def test_report_sections_present(self):
        report = study_report(run_icsc_study(), workflow_directions())
        for heading in (
            "# Mapping study report",
            "## Q1", "## Q2", "## Q3",
            "## Simulated manual classification",
            "## Table 1", "## Table 2",
            "## Threats to validity",
        ):
            assert heading in report

    def test_report_is_valid_markdown_tables(self):
        report = study_report(run_icsc_study(), workflow_directions())
        # Every markdown table row has balanced pipes.
        for line in report.splitlines():
            if line.startswith("|"):
                assert line.rstrip().endswith("|")
