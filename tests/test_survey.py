"""Unit tests for the survey substrate."""

import pytest

from repro.core.selection import SelectionMatrix
from repro.errors import ResponseValidationError, SurveyError, ValidationError
from repro.survey.aggregate import (
    likert_summary,
    option_counts,
    run_tool_selection_survey,
    selection_matrix_from_responses,
)
from repro.survey.instrument import (
    FreeTextQuestion,
    LikertQuestion,
    MultiChoiceQuestion,
    Questionnaire,
    SingleChoiceQuestion,
    tool_selection_questionnaire,
)
from repro.survey.response import Response, ResponseSet


@pytest.fixture
def questionnaire():
    return Questionnaire(
        "demo",
        "Demo survey",
        [
            SingleChoiceQuestion("color", "Pick one", options=("red", "blue")),
            MultiChoiceQuestion(
                "tools", "Pick some", options=("a", "b", "c"),
                min_choices=1, max_choices=2, required=False,
            ),
            LikertQuestion("satisfaction", "Rate it", required=False),
            FreeTextQuestion("notes", "Anything else?", required=False),
        ],
    )


class TestQuestions:
    def test_single_choice_validation(self):
        q = SingleChoiceQuestion("k", "p", options=("x", "y"))
        assert q.validate_answer("x") == "x"
        with pytest.raises(ResponseValidationError):
            q.validate_answer("z")
        with pytest.raises(ResponseValidationError):
            q.validate_answer(["x"])

    def test_single_choice_needs_two_options(self):
        with pytest.raises(ValidationError):
            SingleChoiceQuestion("k", "p", options=("only",))

    def test_multi_choice_bounds(self):
        q = MultiChoiceQuestion("k", "p", options=("a", "b", "c"),
                                min_choices=1, max_choices=2)
        assert q.validate_answer(["a", "b"]) == ("a", "b")
        with pytest.raises(ResponseValidationError):
            q.validate_answer([])
        with pytest.raises(ResponseValidationError):
            q.validate_answer(["a", "b", "c"])
        with pytest.raises(ResponseValidationError):
            q.validate_answer(["a", "a"])
        with pytest.raises(ResponseValidationError):
            q.validate_answer("a")  # bare string is ambiguous

    def test_multi_choice_bad_bounds(self):
        with pytest.raises(ValidationError):
            MultiChoiceQuestion("k", "p", options=("a",), min_choices=2,
                                max_choices=1)

    def test_likert(self):
        q = LikertQuestion("k", "p", scale=5)
        assert q.validate_answer(3) == 3
        with pytest.raises(ResponseValidationError):
            q.validate_answer(6)
        with pytest.raises(ResponseValidationError):
            q.validate_answer(True)  # bool is not a rating

    def test_free_text(self):
        q = FreeTextQuestion("k", "p", max_length=5)
        assert q.validate_answer("  ok ") == "ok"
        with pytest.raises(ResponseValidationError):
            q.validate_answer("toolongtext")
        with pytest.raises(ResponseValidationError):
            q.validate_answer(42)

    def test_free_text_required_empty(self):
        q = FreeTextQuestion("k", "p", required=True)
        with pytest.raises(ResponseValidationError):
            q.validate_answer("   ")


class TestQuestionnaire:
    def test_duplicate_question_key(self, questionnaire):
        with pytest.raises(SurveyError):
            questionnaire.add(FreeTextQuestion("notes", "again"))

    def test_lookup(self, questionnaire):
        assert questionnaire["color"].prompt == "Pick one"
        with pytest.raises(SurveyError):
            questionnaire["ghost"]

    def test_required_keys(self, questionnaire):
        assert questionnaire.required_keys == ("color",)


class TestResponse:
    def test_missing_required_rejected(self, questionnaire):
        with pytest.raises(ResponseValidationError):
            Response(questionnaire, "r1", {"notes": "hi"})

    def test_unknown_question_rejected(self, questionnaire):
        with pytest.raises(ResponseValidationError):
            Response(questionnaire, "r1", {"color": "red", "ghost": 1})

    def test_answers_validated(self, questionnaire):
        with pytest.raises(ResponseValidationError):
            Response(questionnaire, "r1", {"color": "green"})

    def test_lookup_and_answered(self, questionnaire):
        response = Response(questionnaire, "r1",
                            {"color": "red", "tools": ["a"]})
        assert response["color"] == "red"
        assert response.answered("tools")
        assert not response.answered("notes")
        with pytest.raises(SurveyError):
            response["notes"]
        assert response.get("notes", "none") == "none"


class TestResponseSet:
    def test_duplicate_respondent(self, questionnaire):
        responses = ResponseSet(questionnaire)
        responses.submit("r1", {"color": "red"})
        with pytest.raises(SurveyError):
            responses.submit("r1", {"color": "blue"})

    def test_completion_rate(self, questionnaire):
        responses = ResponseSet(questionnaire)
        responses.submit("r1", {"color": "red", "satisfaction": 4})
        responses.submit("r2", {"color": "blue"})
        assert responses.completion_rate("satisfaction") == pytest.approx(0.5)
        assert responses.completion_rate("color") == 1.0

    def test_completion_rate_empty(self, questionnaire):
        with pytest.raises(SurveyError):
            ResponseSet(questionnaire).completion_rate("color")


class TestAggregation:
    def test_option_counts(self, questionnaire):
        responses = ResponseSet(questionnaire)
        responses.submit("r1", {"color": "red", "tools": ["a", "b"]})
        responses.submit("r2", {"color": "red"})
        assert option_counts(responses, "color").to_dict() == {"red": 2, "blue": 0}
        assert option_counts(responses, "tools").to_dict() == {"a": 1, "b": 1, "c": 0}

    def test_option_counts_wrong_kind(self, questionnaire):
        responses = ResponseSet(questionnaire)
        responses.submit("r1", {"color": "red"})
        with pytest.raises(SurveyError):
            option_counts(responses, "notes")

    def test_likert_summary(self, questionnaire):
        responses = ResponseSet(questionnaire)
        responses.submit("r1", {"color": "red", "satisfaction": 4})
        responses.submit("r2", {"color": "red", "satisfaction": 2})
        stats = likert_summary(responses, "satisfaction")
        assert stats["mean"] == pytest.approx(3.0)
        assert stats["n"] == 2

    def test_likert_summary_no_answers(self, questionnaire):
        responses = ResponseSet(questionnaire)
        responses.submit("r1", {"color": "red"})
        with pytest.raises(SurveyError):
            likert_summary(responses, "satisfaction")


class TestToolSelectionSurvey:
    def test_reproduces_table2(self, tools, applications, scheme, selection):
        _, responses = run_tool_selection_survey(tools, applications)
        assert len(responses) == 10
        ordered = [
            t.key for d in scheme.keys for t in tools.by_direction(d)
        ]
        matrix = selection_matrix_from_responses(
            responses, ordered,
            name_to_key={t.name: t.key for t in tools},
        )
        assert matrix == selection

    def test_questionnaire_covers_all_tools(self, tools):
        questionnaire = tool_selection_questionnaire([t.name for t in tools])
        assert len(questionnaire["selected-tools"].options) == 25
