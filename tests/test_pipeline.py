"""Unit tests for :mod:`repro.pipeline`: cache, manifest, runner, study DAG."""

from __future__ import annotations

import pickle
from pathlib import Path

import pytest

from repro.errors import (
    CacheError,
    PipelineDefinitionError,
    StageExecutionError,
)
from repro.pipeline import (
    ArtifactCache,
    Pipeline,
    PipelineResult,
    RunManifest,
    Stage,
    stable_digest,
)


class TestStableDigest:
    def test_mapping_key_order_is_irrelevant(self):
        assert stable_digest({"b": 1, "a": 2}) == stable_digest({"a": 2, "b": 1})

    def test_distinct_values_distinct_digests(self):
        assert stable_digest({"seed": 1}) != stable_digest({"seed": 2})
        assert stable_digest("x") != stable_digest("x", "y")

    def test_container_canonicalization(self):
        assert stable_digest((1, 2)) == stable_digest([1, 2])
        assert stable_digest({3, 1, 2}) == stable_digest([1, 2, 3])
        assert stable_digest(Path("a/b")) == stable_digest("a/b")

    def test_unhashable_type_rejected(self):
        with pytest.raises(CacheError):
            stable_digest(object())


class TestArtifactCache:
    def test_memory_roundtrip_and_counters(self):
        cache = ArtifactCache()
        key = stable_digest("k")
        assert key not in cache
        with pytest.raises(CacheError):
            cache.load(key)
        cache.store(key, {"v": 1})
        assert key in cache
        assert cache.load(key) == {"v": 1}
        assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)

    def test_disk_persists_across_instances(self, tmp_path):
        key = stable_digest("payload")
        ArtifactCache(tmp_path).store(key, [1, 2, 3])
        fresh = ArtifactCache(tmp_path)
        assert fresh.load(key) == [1, 2, 3]
        assert fresh.hits == 1

    def test_store_leaves_no_temp_files(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.store(stable_digest("a"), "x")
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []

    def test_corrupt_artifact_reported_not_swallowed(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = stable_digest("corrupt")
        cache.store(key, "value")
        path = next(tmp_path.glob(f"{key}*.pkl"))
        path.write_bytes(b"not a pickle")
        with pytest.raises(CacheError):
            ArtifactCache(tmp_path).load(key)

    def test_evict_and_clear(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        keys = [stable_digest(i) for i in range(3)]
        for key in keys:
            cache.store(key, key)
        cache.evict(keys[0])
        assert keys[0] not in cache and keys[1] in cache
        cache.clear()
        assert all(key not in cache for key in keys)
        assert list(tmp_path.glob("*.pkl")) == []


class TestRunManifest:
    def test_roundtrip(self, tmp_path):
        manifest = RunManifest(tmp_path / "run.json")
        manifest.begin("run-1")
        manifest.mark_complete("collect", "key-a")
        reloaded = RunManifest(tmp_path / "run.json")
        reloaded.begin("run-1")
        assert reloaded.is_complete("collect", "key-a")
        assert not reloaded.is_complete("collect", "key-other")
        assert reloaded.completed == {"collect": "key-a"}

    def test_different_run_key_discards_records(self, tmp_path):
        manifest = RunManifest(tmp_path / "run.json")
        manifest.begin("run-1")
        manifest.mark_complete("collect", "key-a")
        changed = RunManifest(tmp_path / "run.json")
        changed.begin("run-2")  # configuration changed: ledger resets
        assert changed.completed == {}

    def test_mark_without_begin_rejected(self, tmp_path):
        from repro.errors import PipelineError

        with pytest.raises(PipelineError):
            RunManifest(tmp_path / "run.json").mark_complete("s", "k")


def _diamond() -> Pipeline:
    """A diamond DAG: base → {left, right} → join."""
    return Pipeline(
        [
            Stage("base", lambda inputs, n: list(range(n)), params={"n": 5}),
            Stage(
                "left",
                lambda inputs: [x * 2 for x in inputs["base"]],
                deps=("base",),
            ),
            Stage(
                "right",
                lambda inputs: [x + 100 for x in inputs["base"]],
                deps=("base",),
            ),
            Stage(
                "join",
                lambda inputs: inputs["left"] + inputs["right"],
                deps=("left", "right"),
            ),
        ],
        name="diamond",
    )


class TestPipelineDefinition:
    def test_duplicate_stage_rejected(self):
        with pytest.raises(PipelineDefinitionError):
            Pipeline([Stage("a", lambda i: 1), Stage("a", lambda i: 2)])

    def test_unknown_dependency_rejected(self):
        with pytest.raises(PipelineDefinitionError):
            Pipeline([Stage("a", lambda i: 1, deps=("ghost",))])

    def test_cycle_rejected(self):
        with pytest.raises(PipelineDefinitionError):
            Pipeline(
                [
                    Stage("a", lambda i: 1, deps=("b",)),
                    Stage("b", lambda i: 2, deps=("a",)),
                ]
            )

    def test_unknown_target_rejected(self):
        with pytest.raises(PipelineDefinitionError):
            _diamond().run(["ghost"])

    def test_topological_order_is_deterministic(self):
        assert _diamond().order == ("base", "left", "right", "join")


class TestCacheKeys:
    def test_keys_stable_across_builds(self):
        assert _diamond().stage_keys() == _diamond().stage_keys()

    def test_param_change_invalidates_stage_and_downstream(self):
        baseline = _diamond().stage_keys()
        changed_pipeline = _diamond()
        stages = dict(changed_pipeline.stages)
        stages["base"] = Stage(
            "base", stages["base"].fn, params={"n": 6}
        )
        changed = Pipeline(stages.values(), name="diamond").stage_keys()
        assert changed["base"] != baseline["base"]
        assert changed["join"] != baseline["join"]  # invalidation propagates

    def test_stage_version_bump_invalidates(self):
        baseline = _diamond().stage_keys()
        bumped_pipeline = Pipeline(
            [
                Stage("base", lambda inputs, n: list(range(n)),
                      params={"n": 5}, version="2"),
                *(s for n, s in _diamond().stages.items() if n != "base"),
            ],
            name="diamond",
        )
        assert bumped_pipeline.stage_keys()["base"] != baseline["base"]

    def test_pipeline_identity_partitions_shared_cache(self):
        other = Pipeline(_diamond().stages.values(), name="other")
        assert other.stage_keys()["join"] != _diamond().stage_keys()["join"]


class TestPipelineRun:
    def test_serial_run_computes_everything(self):
        run = _diamond().run()
        assert run["join"] == [0, 2, 4, 6, 8, 100, 101, 102, 103, 104]
        assert run.executed == ("base", "left", "right", "join")
        assert run.cached == ()

    def test_warm_cache_executes_nothing(self):
        cache = ArtifactCache()
        first = _diamond().run(cache=cache)
        second = _diamond().run(cache=cache)
        assert second.executed == ()
        assert set(second.cached) == {"base", "left", "right", "join"}
        assert second.outputs == first.outputs

    def test_targets_run_only_their_closure(self):
        run = _diamond().run(["left"])
        assert set(run.executed) == {"base", "left"}
        assert set(run.outputs) == {"left"}

    def test_serial_and_parallel_agree(self):
        serial = _diamond().run()
        parallel = _diamond().run(parallel=True, max_workers=4)
        assert serial.outputs == parallel.outputs
        assert set(serial.executed) == set(parallel.executed)

    @pytest.mark.parametrize("parallel", [False, True])
    def test_stage_failure_wrapped(self, parallel):
        def boom(inputs):
            raise ValueError("kaput")

        pipeline = Pipeline(
            [Stage("a", lambda i: 1), Stage("b", boom, deps=("a",))]
        )
        with pytest.raises(StageExecutionError, match="stage 'b' failed"):
            pipeline.run(parallel=parallel)

    def test_resume_after_simulated_crash(self, tmp_path):
        """Kill between stages; a re-run skips the completed prefix."""
        cache = ArtifactCache(tmp_path / "cache")
        manifest = RunManifest(tmp_path / "run.json")
        executions: list[str] = []

        def tracked(name, fn):
            def wrapper(inputs, **params):
                executions.append(name)
                return fn(inputs, **params)
            return wrapper

        def crash(inputs, **params):
            raise RuntimeError("simulated crash")

        def build(survey_fn):
            return Pipeline(
                [
                    Stage("collect", tracked("collect", lambda i: [1, 2, 3])),
                    Stage("survey", survey_fn, deps=("collect",)),
                    Stage(
                        "analyze",
                        tracked(
                            "analyze", lambda i: sum(i["survey"])
                        ),
                        deps=("survey",),
                    ),
                ],
                name="resumable",
            )

        broken = build(crash)
        with pytest.raises(StageExecutionError):
            broken.run(cache=cache, manifest=manifest)
        assert executions == ["collect"]
        assert set(manifest.completed) == {"collect"}

        # "Restart the process": fresh cache handle, fresh manifest handle.
        survey = tracked("survey", lambda i: [x * 10 for x in i["collect"]])
        rerun = build(survey).run(
            cache=ArtifactCache(tmp_path / "cache"),
            manifest=RunManifest(tmp_path / "run.json"),
        )
        assert executions == ["collect", "survey", "analyze"]  # no re-collect
        assert rerun.cached == ("collect",)
        assert rerun["analyze"] == 60

    def test_invalid_cached_value_reexecutes(self, tmp_path):
        target = tmp_path / "artifact.txt"

        def render(inputs):
            target.write_text("rendered", encoding="utf-8")
            return str(target)

        pipeline = Pipeline(
            [Stage("render", render,
                   validate=lambda path: Path(path).exists())]
        )
        cache = ArtifactCache()
        pipeline.run(cache=cache)
        assert pipeline.run(cache=cache).cached == ("render",)
        target.unlink()
        rerun = pipeline.run(cache=cache)
        assert rerun.executed == ("render",)
        assert target.exists()

    def test_corrupt_cached_artifact_recomputes(self, tmp_path):
        """Cache rot must not kill a run: the stage recomputes instead."""
        cache_dir = tmp_path / "cache"
        first = _diamond().run(cache=ArtifactCache(cache_dir))
        for path in cache_dir.glob("*.pkl"):
            path.write_bytes(b"garbage")
        rerun = _diamond().run(cache=ArtifactCache(cache_dir))
        assert rerun.outputs == first.outputs
        assert "join" in rerun.executed  # rot was detected and healed
        healed = _diamond().run(cache=ArtifactCache(cache_dir))
        assert healed.executed == ()  # the re-stored artifacts are good

    def test_result_is_picklable(self):
        run = _diamond().run()
        assert isinstance(pickle.loads(pickle.dumps(run)), PipelineResult)


class TestParallelFailure:
    """Failure semantics under ``parallel=True``: a raising stage must
    surface a :class:`StageExecutionError` naming the stage, dependents
    must never execute, and the manifest must stay resumable."""

    @staticmethod
    def _build(survey_fn, executions):
        """collect → {survey, classify} → analyze, with execution tracking."""
        def tracked(name, fn):
            def wrapper(inputs, **params):
                executions.append(name)
                return fn(inputs, **params)
            return wrapper

        return Pipeline(
            [
                Stage("collect", tracked("collect", lambda i: [1, 2, 3])),
                Stage("survey", survey_fn, deps=("collect",)),
                Stage(
                    "classify",
                    tracked("classify", lambda i: len(i["collect"])),
                    deps=("collect",),
                ),
                Stage(
                    "analyze",
                    tracked("analyze", lambda i: sum(i["survey"])),
                    deps=("survey", "classify"),
                ),
            ],
            name="parallel-failure",
        )

    def test_error_names_the_failing_stage(self):
        def crash(inputs, **params):
            raise RuntimeError("simulated parallel crash")

        executions: list[str] = []
        pipeline = self._build(crash, executions)
        with pytest.raises(StageExecutionError, match="stage 'survey' failed"):
            pipeline.run(parallel=True, max_workers=4)

    def test_dependents_of_failed_stage_never_execute(self):
        def crash(inputs, **params):
            raise RuntimeError("boom")

        executions: list[str] = []
        pipeline = self._build(crash, executions)
        with pytest.raises(StageExecutionError):
            pipeline.run(parallel=True, max_workers=4)
        assert "analyze" not in executions  # dependent was skipped
        assert "collect" in executions

    def test_manifest_stays_resumable_after_parallel_failure(self, tmp_path):
        """A parallel crash leaves a consistent ledger; the re-run skips
        the recorded prefix and completes."""
        def crash(inputs, **params):
            raise RuntimeError("boom")

        executions: list[str] = []
        broken = self._build(crash, executions)
        cache_dir = tmp_path / "cache"
        with pytest.raises(StageExecutionError):
            broken.run(
                cache=ArtifactCache(cache_dir),
                manifest=RunManifest(tmp_path / "run.json"),
                parallel=True,
                max_workers=4,
            )
        ledger = RunManifest(tmp_path / "run.json")
        assert "collect" in ledger.completed  # prefix recorded
        assert "survey" not in ledger.completed
        assert "analyze" not in ledger.completed

        # "Restart the process" with the survey stage fixed (same name,
        # version, and params -> same cache key, so records still match).
        collect_runs_before = executions.count("collect")
        survey = lambda i: [x * 10 for x in i["collect"]]  # noqa: E731
        rerun = self._build(survey, executions).run(
            cache=ArtifactCache(cache_dir),
            manifest=RunManifest(tmp_path / "run.json"),
            parallel=True,
            max_workers=4,
        )
        assert rerun["analyze"] == 60
        assert executions.count("collect") == collect_runs_before  # resumed

    def test_first_failure_wins_with_multiple_raising_stages(self):
        def crash(inputs, **params):
            raise RuntimeError("boom")

        pipeline = Pipeline(
            [
                Stage("a", crash),
                Stage("b", crash),
                Stage("c", lambda i: 1),
            ],
            name="multi-failure",
        )
        with pytest.raises(StageExecutionError, match="failed: boom"):
            pipeline.run(parallel=True, max_workers=4)

    def test_parallel_run_emits_wellformed_span_attributed_ndjson(self):
        """Concurrent stages logging through one StructuredLogger must
        produce one parseable NDJSON line per event — no interleaving —
        and every stage event must carry its own stage span's id."""
        import io
        import json
        import time

        from repro.telemetry import StructuredLogger, Telemetry
        from repro.telemetry.tracer import Tracer

        stream = io.StringIO()
        tracer = Tracer()
        tel = Telemetry(
            tracer=tracer,
            log=StructuredLogger(tracer=tracer, stream=stream),
        )

        def slow_survey(inputs, **params):
            time.sleep(0.005)  # force genuine stage overlap
            return [x * 10 for x in inputs["collect"]]

        executions: list[str] = []
        pipeline = self._build(slow_survey, executions)
        pipeline.run(parallel=True, max_workers=4, telemetry=tel)

        lines = stream.getvalue().splitlines()
        payloads = [json.loads(line) for line in lines]  # all parse
        assert all(p["type"] == "log" for p in payloads)

        # Stage events are attributed to the emitting stage's span.
        span_of = {
            span.tags.get("stage"): span.span_id
            for span in tracer.spans()
            if span.name.startswith("stage:")
        }
        starts = [p for p in payloads if p["event"] == "stage.start"]
        assert {p["fields"]["stage"] for p in starts} == {
            "collect", "survey", "classify", "analyze"
        }
        for payload in starts:
            assert payload["span_id"] == span_of[payload["fields"]["stage"]]
        # survey/classify ran on worker threads: more than one thread id.
        assert len({p["thread_id"] for p in starts}) > 1
        # The in-memory buffer and the stream agree line for line.
        assert len(tel.log.events()) == len(lines)


class TestStudyPipeline:
    @pytest.fixture(autouse=True)
    def fresh_process_cache(self):
        from repro.pipeline.study import reset_process_cache

        reset_process_cache()
        yield
        reset_process_cache()

    def test_warm_run_icsc_study_recomputes_nothing(self):
        """Second identical invocation must execute zero stages."""
        from repro import run_icsc_study
        from repro.pipeline.study import stage_execution_counts

        first = run_icsc_study(seed=2023)
        counts_after_cold = stage_execution_counts()
        assert counts_after_cold == {
            "collect": 1, "classify": 1, "survey": 1, "analyze": 1,
        }
        second = run_icsc_study(seed=2023)
        assert stage_execution_counts() == counts_after_cold
        assert second.q3.top_direction == first.q3.top_direction
        assert (
            second.comparison.permutation.p_value
            == first.comparison.permutation.p_value
        )

    def test_seed_change_invalidates_only_analyze(self):
        from repro import run_icsc_study
        from repro.pipeline.study import stage_execution_counts

        run_icsc_study(seed=2023)
        run_icsc_study(seed=7)
        counts = stage_execution_counts()
        assert counts["analyze"] == 2  # seed is an analyze parameter
        assert counts["collect"] == 1  # upstream stages stay cached

    def test_serial_and_parallel_study_agree(self):
        from repro.pipeline import ArtifactCache
        from repro.pipeline.study import run_icsc_pipeline

        serial, _ = run_icsc_pipeline(cache=ArtifactCache())
        parallel, _ = run_icsc_pipeline(cache=ArtifactCache(), parallel=True)
        assert serial.q2.distribution.to_dict() == (
            parallel.q2.distribution.to_dict()
        )
        assert (
            serial.comparison.permutation.p_value
            == parallel.comparison.permutation.p_value
        )

    def test_disk_cache_warm_across_instances(self, tmp_path):
        from repro.pipeline import ArtifactCache
        from repro.pipeline.study import run_icsc_pipeline

        _, cold = run_icsc_pipeline(cache=ArtifactCache(tmp_path))
        assert len(cold.executed) == 4
        _, warm = run_icsc_pipeline(cache=ArtifactCache(tmp_path))
        assert warm.executed == ()
        assert len(warm.cached) == 4

    def test_render_revalidates_missing_files(self, tmp_path):
        from repro.pipeline import ArtifactCache
        from repro.pipeline.study import render_icsc_artifacts

        cache = ArtifactCache()
        out = tmp_path / "artifacts"
        artifacts = render_icsc_artifacts(out, cache=cache)
        assert artifacts and all(p.exists() for p in artifacts.values())
        next(iter(artifacts.values())).unlink()
        again = render_icsc_artifacts(out, cache=cache)
        assert all(p.exists() for p in again.values())
