"""Integration tests: protocol, staged pipeline, full ICSC replication, reporting."""

import pytest

from repro.core.protocol import ResearchQuestion, StudyProtocol, icsc_protocol
from repro.core.study import MappingStudy, StudyStage, run_icsc_study
from repro.core.taxonomy import workflow_directions
from repro.data.icsc import icsc_applications, icsc_institutions, icsc_tools
from repro.errors import StudyError, ValidationError
from repro.reporting.report import study_report


class TestProtocol:
    def test_icsc_protocol_shape(self):
        protocol = icsc_protocol()
        assert len(protocol.questions) == 3
        assert protocol.question("q2").text.startswith("Which research")
        assert len(protocol.scheme) == 5

    def test_unknown_question(self):
        with pytest.raises(ValidationError):
            icsc_protocol().question("q9")

    def test_validation(self):
        scheme = workflow_directions()
        with pytest.raises(ValidationError):
            StudyProtocol("", (ResearchQuestion("q1", "?"),), scheme)
        with pytest.raises(ValidationError):
            StudyProtocol("T", (), scheme)
        with pytest.raises(ValidationError):
            StudyProtocol(
                "T",
                (ResearchQuestion("q1", "?"), ResearchQuestion("q1", "again")),
                scheme,
            )


class TestPipelineStaging:
    def test_stage_transitions(self):
        study = MappingStudy(icsc_protocol())
        assert study.stage is StudyStage.PLANNED
        study.collect(icsc_institutions(), icsc_tools(), icsc_applications())
        assert study.stage is StudyStage.COLLECTED
        study.classify()
        assert study.stage is StudyStage.CLASSIFIED
        study.survey()
        assert study.stage is StudyStage.SURVEYED
        results = study.analyze()
        assert study.stage is StudyStage.ANALYZED
        assert results.selection.total_selections == 28

    def test_out_of_order_rejected(self):
        study = MappingStudy(icsc_protocol())
        with pytest.raises(StudyError):
            study.classify()
        with pytest.raises(StudyError):
            study.survey()
        with pytest.raises(StudyError):
            study.analyze()

    def test_double_collect_rejected(self):
        study = MappingStudy(icsc_protocol())
        study.collect(icsc_institutions(), icsc_tools(), icsc_applications())
        with pytest.raises(StudyError):
            study.collect(icsc_institutions(), icsc_tools(), icsc_applications())

    def test_accessors_before_collect(self):
        study = MappingStudy(icsc_protocol())
        with pytest.raises(StudyError):
            study.tools
        with pytest.raises(StudyError):
            study.responses


class TestFullReplication:
    @pytest.fixture(scope="class")
    def results(self):
        return run_icsc_study(seed=2023)

    def test_q1(self, results):
        assert results.q1.n_directions == 5

    def test_q2_matches_paper(self, results):
        assert tuple(results.q2.distribution.values) == (3, 7, 3, 6, 6)
        assert results.q2.majority_single_topic
        assert results.q2.full_coverage_institutions == 0

    def test_q3_matches_paper(self, results):
        assert tuple(results.q3.votes.values) == (4, 11, 1, 6, 6)
        assert results.q3.top_direction == "orchestration"
        assert results.q3.bottom_direction == "energy-efficiency"

    def test_classifier_check_ran(self, results):
        evaluation = results.classifier_evaluation
        assert evaluation is not None
        assert evaluation.accuracy == 1.0

    def test_tables_regenerated(self, results):
        assert results.table1.header[1] == "Orchestration"
        body = "\n".join("".join(r) for r in results.table2.rows)
        assert body.count("✓") == 28

    def test_report_contains_key_findings(self, results):
        report = study_report(results, workflow_directions())
        assert "Orchestration" in report
        assert "28.0%" in report
        assert "Most demanded direction: **Orchestration**" in report
        assert "accuracy 1.00" in report

    def test_deterministic(self, results):
        again = run_icsc_study(seed=2023)
        assert (
            again.comparison.permutation.p_value
            == results.comparison.permutation.p_value
        )


class TestArtifactRendering:
    def test_render_all_artifacts(self, ecosystem, tmp_path):
        from repro.data.icsc import spoke1_structure
        from repro.reporting.figures import render_all_artifacts

        _, tools, applications, scheme = ecosystem
        artifacts = render_all_artifacts(
            tools, applications, scheme, tmp_path, spoke1=spoke1_structure()
        )
        expected = {
            "fig1", "fig2", "fig3", "fig4", "comparison",
            "table1_md", "table1_tex", "table2_md", "table2_tex",
            "table2_grid", "table2_csv", "fig2_csv", "fig3_csv", "fig4_csv",
        }
        assert expected <= set(artifacts)
        for path in artifacts.values():
            assert path.exists()
            assert path.stat().st_size > 0

    def test_spoke1_figure_wellformed(self):
        import xml.dom.minidom

        from repro.data.icsc import spoke1_structure
        from repro.reporting.figures import render_spoke1_figure

        xml.dom.minidom.parseString(
            render_spoke1_figure(spoke1_structure()).render()
        )
