"""Smoke test for ``scripts/check.sh``: the suite must run from any cwd.

Guards the bug class fixed in this repo's first green PR: a relative
``PYTHONPATH=src`` (or relative pytest paths) silently breaking as soon
as tests run from outside the repo root.  The script is exercised from a
temporary directory with ``PYTHONPATH`` scrubbed from the environment —
exactly the situation that broke the seed's example tests.

The subset run here (a handful of fast pipeline unit tests) deliberately
excludes this module, so the check cannot recurse into itself.
"""

import os
import shutil
import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
CHECK_SH = REPO_ROOT / "scripts" / "check.sh"

# Fast, dependency-light selection proving imports and collection work.
SMOKE_SELECTION = "tests/test_pipeline.py::TestPipelineRun"


@pytest.mark.skipif(shutil.which("bash") is None, reason="bash unavailable")
def test_check_script_runs_from_foreign_cwd(tmp_path):
    env = {k: v for k, v in os.environ.items() if k != "PYTHONPATH"}
    result = subprocess.run(
        ["bash", str(CHECK_SH), SMOKE_SELECTION],
        capture_output=True,
        text=True,
        cwd=tmp_path,  # decidedly not the repo root
        env=env,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"check.sh failed from {tmp_path}:\n{result.stdout[-2000:]}"
        f"\n{result.stderr[-2000:]}"
    )
    assert "passed" in result.stdout or "." in result.stdout


def test_check_script_is_executable():
    assert CHECK_SH.exists()
    assert os.access(CHECK_SH, os.X_OK), "scripts/check.sh must be chmod +x"


@pytest.mark.skipif(shutil.which("bash") is None, reason="bash unavailable")
def test_check_script_smoke_boots_and_drains_server(tmp_path):
    """``--smoke`` boots the HTTP service on an ephemeral port, hits
    /health over a real socket, and exits 0 after a graceful shutdown —
    from a foreign cwd, like everything else the script does."""
    env = {k: v for k, v in os.environ.items() if k != "PYTHONPATH"}
    result = subprocess.run(
        ["bash", str(CHECK_SH), "--smoke"],
        capture_output=True,
        text=True,
        cwd=tmp_path,
        env=env,
        timeout=120,
    )
    assert result.returncode == 0, (
        f"check.sh --smoke failed:\n{result.stdout[-2000:]}"
        f"\n{result.stderr[-2000:]}"
    )
    assert "/health ok" in result.stdout
    assert "graceful shutdown clean" in result.stdout
