"""Parity suite for the compiled scheduling core.

The compiled kernels (`repro.continuum.compile`) must be **bit-identical**
to the pure-Python reference implementations kept as ``*_reference`` —
same placements, same starts/finishes, same tie-breaks — across a grid of
random DAGs × fleets, requirement profiles, and scheduler knobs.  Exact
float equality everywhere: ``==``, never ``approx``.
"""

import numpy as np
import pytest

from repro.continuum.compile import (
    CompiledProblem,
    ResourceTimeline,
    compile_problem,
    upward_rank_array,
)
from repro.continuum.montecarlo import SimulationContext, replicate_once
from repro.continuum.resources import default_continuum
from repro.continuum.scheduling import (
    EnergyAwareScheduler,
    HeftScheduler,
    RoundRobinScheduler,
    Schedule,
    TaskPlacement,
)
from repro.continuum.simulate import _simulate_reference, simulate_schedule
from repro.continuum.workflow import Task, Workflow, layered_workflow, random_workflow
from repro.errors import SchedulingError


def _with_requirements(workflow, name):
    """Rebuild *workflow* sprinkling requirement profiles deterministically."""
    tags = [frozenset(), frozenset({"gpu"}), frozenset({"kubernetes"}),
            frozenset({"sensor"}), frozenset({"gpu", "mpi"})]
    tasks = [
        Task(t.key, t.work, t.output_size, requirements=tags[i % len(tags)])
        for i, t in enumerate(workflow)
    ]
    return Workflow(name, tasks, workflow.edges)


def _workflows():
    yield random_workflow(1, seed=0)
    yield random_workflow(25, seed=1, edge_probability=0.3)
    yield random_workflow(60, seed=2, edge_probability=0.08)
    yield random_workflow(40, seed=3, edge_probability=0.0)  # no edges
    yield layered_workflow(4, 5)
    yield _with_requirements(
        random_workflow(45, seed=4, edge_probability=0.15), "reqs"
    )


def _continuums():
    yield default_continuum(n_hpc=2, n_cloud=3, n_edge=4, seed=0)
    yield default_continuum(n_hpc=1, n_cloud=0, n_edge=0, seed=1)  # single node
    yield default_continuum(n_hpc=1, n_cloud=2, n_edge=2, seed=2)


def _schedulers():
    yield "heft-insertion", HeftScheduler(insertion=True)
    yield "heft-append", HeftScheduler(insertion=False)
    yield "energy-1.0", EnergyAwareScheduler(slack=1.0)
    yield "energy-1.3", EnergyAwareScheduler(slack=1.3)
    yield "energy-2.0", EnergyAwareScheduler(slack=2.0)
    yield "energy-8.0", EnergyAwareScheduler(slack=8.0)
    yield "round-robin", RoundRobinScheduler()


GRID = [
    pytest.param(wf, cont, sched, id=f"{wf.name}-w{wi}-c{ci}-{label}")
    for wi, wf in enumerate(_workflows())
    for ci, cont in enumerate(_continuums())
    for label, sched in _schedulers()
    # Requirement-carrying tasks are infeasible on the single-node fleet;
    # that pairing is covered by the infeasibility test instead.
    if not (wf.name == "reqs" and ci == 1)
]


class TestSchedulerParity:
    @pytest.mark.parametrize("workflow, continuum, scheduler", GRID)
    def test_bit_identical_schedules(self, workflow, continuum, scheduler):
        compiled = scheduler.schedule(workflow, continuum)
        reference = scheduler.schedule_reference(workflow, continuum)
        for key in workflow.task_keys:
            assert compiled[key] == reference[key]  # exact floats, same node

    def test_placement_floats_are_python_floats(self):
        # json.dumps downstream (artifact cache, cell stats) rejects
        # np.float64; the compiled path must lift to Python floats.
        wf = random_workflow(10, seed=7)
        schedule = HeftScheduler().schedule(wf, default_continuum(seed=7))
        for p in schedule.placements:
            assert type(p.start) is float and type(p.finish) is float

    def test_precompiled_problem_reused(self):
        wf = random_workflow(20, seed=8)
        cont = default_continuum(seed=8)
        problem = compile_problem(wf, cont)
        for _, scheduler in _schedulers():
            direct = scheduler.schedule(wf, cont)
            shared = scheduler.schedule(wf, cont, problem=problem)
            assert all(direct[k] == shared[k] for k in wf.task_keys)

    def test_infeasible_error_matches_reference(self):
        wf = Workflow(
            "bad",
            [Task("a", 1.0), Task("b", 1.0, requirements=frozenset({"quantum"}))],
        )
        cont = default_continuum(seed=0)
        with pytest.raises(SchedulingError) as compiled_err:
            HeftScheduler().schedule(wf, cont)
        with pytest.raises(SchedulingError) as reference_err:
            HeftScheduler().schedule_reference(wf, cont)
        assert str(compiled_err.value) == str(reference_err.value)


class TestRankParity:
    @pytest.mark.parametrize(
        "workflow", list(_workflows()), ids=lambda w: w.name
    )
    def test_upward_ranks_exact(self, workflow):
        cont = default_continuum(n_hpc=2, n_cloud=3, n_edge=4, seed=3)
        heft = HeftScheduler()
        assert heft.upward_ranks(workflow, cont) == heft.upward_ranks_reference(
            workflow, cont
        )

    def test_rank_array_cached(self):
        problem = compile_problem(
            random_workflow(15, seed=9), default_continuum(seed=9)
        )
        assert upward_rank_array(problem) is upward_rank_array(problem)


class TestValidateParity:
    @pytest.fixture(scope="class")
    def continuum(self):
        return default_continuum(n_hpc=1, n_cloud=1, n_edge=1, seed=5)

    def _raises_same(self, schedule):
        with pytest.raises(SchedulingError) as vec_err:
            schedule.validate()
        with pytest.raises(SchedulingError) as ref_err:
            schedule.validate_reference()
        assert str(vec_err.value) == str(ref_err.value)

    def test_valid_schedules_pass_both(self, continuum):
        wf = random_workflow(30, seed=5, edge_probability=0.2)
        for _, scheduler in _schedulers():
            schedule = scheduler.schedule(wf, continuum)
            schedule.validate()
            schedule.validate_reference()

    def test_overlap_detected_identically(self, continuum):
        wf = Workflow("w", [Task("a", 1.0), Task("b", 1.0)])
        self._raises_same(
            Schedule(
                wf, continuum,
                {
                    "a": TaskPlacement("a", "hpc-00", 0.0, 1.0),
                    "b": TaskPlacement("b", "hpc-00", 0.5, 1.5),
                },
            )
        )

    def test_dependency_violation_detected_identically(self, continuum):
        wf = Workflow(
            "w",
            [Task("a", 1.0, output_size=2.0), Task("b", 1.0)],
            [("a", "b")],
        )
        self._raises_same(
            Schedule(
                wf, continuum,
                {
                    "a": TaskPlacement("a", "hpc-00", 0.0, 1.0),
                    "b": TaskPlacement("b", "cloud-00", 1.0, 2.0),
                },
            )
        )

    def test_negative_timing_detected_identically(self, continuum):
        wf = Workflow("w", [Task("a", 1.0)])
        self._raises_same(
            Schedule(
                wf, continuum,
                {"a": TaskPlacement("a", "hpc-00", -1.0, -0.5)},
            )
        )

    def test_inverted_interval_detected_identically(self, continuum):
        wf = Workflow("w", [Task("a", 1.0)])
        self._raises_same(
            Schedule(
                wf, continuum,
                {"a": TaskPlacement("a", "hpc-00", 2.0, 1.0)},
            )
        )


class TestSimulatorParity:
    @pytest.mark.parametrize("jitter", [0.0, 0.25, 0.7])
    @pytest.mark.parametrize(
        "scheduler", [HeftScheduler(), RoundRobinScheduler()],
        ids=["heft", "rr"],
    )
    def test_traces_bit_identical(self, scheduler, jitter):
        wf = random_workflow(50, seed=11, edge_probability=0.12)
        schedule = scheduler.schedule(wf, default_continuum(seed=11))
        compiled = simulate_schedule(schedule, jitter=jitter, seed=21)
        reference, _ = _simulate_reference(
            schedule, jitter, np.random.default_rng(21)
        )
        assert compiled.placements == reference.placements
        assert compiled.makespan == reference.makespan
        assert compiled.busy_energy == reference.busy_energy

    def test_precompiled_problem_identical(self):
        wf = random_workflow(30, seed=12)
        cont = default_continuum(seed=12)
        problem = compile_problem(wf, cont)
        schedule = HeftScheduler().schedule(wf, cont, problem=problem)
        a = simulate_schedule(schedule, jitter=0.4, seed=1)
        b = simulate_schedule(schedule, jitter=0.4, seed=1, problem=problem)
        assert a.placements == b.placements


class TestMonteCarloSharing:
    def test_shared_problem_context_identical(self):
        wf = random_workflow(25, seed=13, edge_probability=0.2)
        cont = default_continuum(seed=13)
        problem = compile_problem(wf, cont)
        schedule = HeftScheduler().schedule(wf, cont, problem=problem)
        solo = SimulationContext(schedule)
        shared = SimulationContext(schedule, problem)
        for mtbf in (None, 40.0):
            a = replicate_once(
                solo, mtbf=mtbf, jitter=0.3, rng=np.random.default_rng(5)
            )
            b = replicate_once(
                shared, mtbf=mtbf, jitter=0.3, rng=np.random.default_rng(5)
            )
            assert a.as_tuple() == b.as_tuple()

    def test_contexts_of_one_problem_share_tables(self):
        wf = random_workflow(15, seed=14)
        cont = default_continuum(seed=14)
        problem = compile_problem(wf, cont)
        s1 = HeftScheduler().schedule(wf, cont, problem=problem)
        s2 = RoundRobinScheduler().schedule(wf, cont, problem=problem)
        c1 = SimulationContext(s1, problem)
        c2 = SimulationContext(s2, problem)
        assert c1.dur is c2.dur
        assert c1.transfer is c2.transfer
        assert c1.preds is c2.preds


class TestCompiledProblem:
    def test_duration_matches_execution_time(self):
        wf = random_workflow(12, seed=15)
        cont = default_continuum(seed=15)
        problem = compile_problem(wf, cont)
        for i, task in enumerate(wf):
            for j, resource in enumerate(cont):
                assert problem.duration[i, j] == resource.execution_time(task.work)

    def test_transfer_row_matches_transfer_time(self):
        wf = random_workflow(8, seed=16)
        cont = default_continuum(n_hpc=1, n_cloud=2, n_edge=1, seed=16)
        problem = compile_problem(wf, cont)
        sizes = [0.0, 0.5, 4.2]
        for size in sizes:
            for i, src in enumerate(cont.keys):
                row = problem.transfer_row(size, i)
                for j, dst in enumerate(cont.keys):
                    assert row[j] == cont.transfer_time(size, src, dst)

    def test_feasibility_matches_supports(self):
        wf = _with_requirements(random_workflow(20, seed=17), "reqs2")
        cont = default_continuum(seed=17)
        problem = compile_problem(wf, cont)
        for i, task in enumerate(wf):
            expected = [
                j for j, r in enumerate(cont) if r.supports(task.requirements)
            ]
            assert problem.feasible_ids(i).tolist() == expected

    def test_duration_matrix_is_frozen(self):
        problem = compile_problem(
            random_workflow(5, seed=18), default_continuum(seed=18)
        )
        with pytest.raises(ValueError):
            problem.duration[0, 0] = 1.0


class TestResourceTimeline:
    def test_empty_timeline(self):
        timeline = ResourceTimeline()
        assert len(timeline) == 0
        assert timeline.last_finish == 0.0
        assert timeline.tail() == 0.0
        assert timeline.intervals == ()

    def test_last_finish_tracks_reservations(self):
        timeline = ResourceTimeline()
        timeline.reserve(0.0, 2.0)
        timeline.reserve(5.0, 1.0)
        assert timeline.last_finish == 6.0
        assert timeline.tail() == 6.0
        assert timeline.intervals == ((0.0, 2.0), (5.0, 6.0))

    def test_earliest_slot_fills_gap(self):
        timeline = ResourceTimeline()
        timeline.reserve(0.0, 1.0)
        timeline.reserve(3.0, 1.0)
        assert timeline.earliest_slot(0.0, 2.0) == 1.0  # gap [1, 3)
        assert timeline.earliest_slot(0.0, 2.5) == 4.0  # no gap wide enough
        assert timeline.earliest_slot(10.0, 1.0) == 10.0

    def test_earliest_slot_skips_past_ready(self):
        timeline = ResourceTimeline()
        for start in range(0, 10, 2):
            timeline.reserve(float(start), 1.0)  # busy [k, k+1) gaps [k+1, k+2)
        assert timeline.earliest_slot(7.2, 0.5) == 7.2
        assert timeline.earliest_slot(8.5, 1.0) == 9.0
