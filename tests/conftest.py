"""Shared fixtures: the ICSC dataset and derived objects."""

from __future__ import annotations

import pytest

from repro.core.selection import SelectionMatrix
from repro.data.icsc import icsc_ecosystem


@pytest.fixture(scope="session")
def ecosystem():
    """The validated ICSC dataset: (institutions, tools, applications, scheme)."""
    return icsc_ecosystem()


@pytest.fixture(scope="session")
def institutions(ecosystem):
    return ecosystem[0]


@pytest.fixture(scope="session")
def tools(ecosystem):
    return ecosystem[1]


@pytest.fixture(scope="session")
def applications(ecosystem):
    return ecosystem[2]


@pytest.fixture(scope="session")
def scheme(ecosystem):
    return ecosystem[3]


@pytest.fixture(scope="session")
def selection(tools, applications, scheme):
    """The published Table 2 matrix."""
    return SelectionMatrix.from_catalogs(tools, applications, scheme)
