"""Unit tests for the leave-one-out sensitivity analysis."""

import pytest

from repro.core.catalog import ApplicationCatalog, ToolCatalog
from repro.core.entities import Application, Tool
from repro.core.sensitivity import (
    jackknife_shares,
    leave_one_application_out,
    leave_one_tool_out,
)
from repro.errors import ValidationError


class TestLeaveOneApplicationOut:
    @pytest.fixture(scope="class")
    def loo(self, tools, applications, scheme):
        return leave_one_application_out(tools, applications, scheme)

    def test_paper_ranking_is_robust(self, loo):
        # Orchestration stays first and energy last under every removal.
        assert loo.top_stable
        assert loo.bottom_stable
        assert loo.breaking_cases == ()

    def test_one_perturbation_per_application(self, loo, applications):
        assert set(loo.perturbed) == set(applications.keys)

    def test_perturbed_totals(self, loo, applications):
        for app in applications:
            removed = loo.perturbed[app.key]
            assert removed.total == 28 - len(app.selected_tools)

    def test_max_swing_bounded(self, loo):
        assert 0.0 < loo.max_share_swing < 0.15

    def test_needs_two_applications(self, tools, scheme):
        single = ApplicationCatalog(
            [Application("only", "Only", "3.1",
                         selected_tools=("streamflow",))]
        )
        with pytest.raises(ValidationError):
            leave_one_application_out(tools, single, scheme)


class TestLeaveOneToolOut:
    def test_supply_top_is_robust(self, tools, scheme):
        loo = leave_one_tool_out(tools, scheme)
        assert loo.top_stable  # orchestration has a 1-tool margin over PP/BD

    def test_bottom_tie_breaks(self, tools, scheme):
        # IC and EE tie at 3 tools; removing one energy tool makes EE the
        # unique minimum, so the bottom category is NOT stable — a genuine
        # fragility of the supply distribution the analysis must surface.
        loo = leave_one_tool_out(tools, scheme)
        assert not loo.bottom_stable
        assert set(loo.breaking_cases) == {
            "pesos", "lapegna-et-al", "de-lucia-et-al",
        }

    def test_needs_two_tools(self, scheme):
        single = ToolCatalog([Tool("t", "T", "inst", "orchestration")])
        with pytest.raises(ValidationError):
            leave_one_tool_out(single, scheme)


class TestJackknife:
    def test_shares_and_errors(self, tools, applications, scheme):
        jk = jackknife_shares(tools, applications, scheme)
        assert set(jk) == set(scheme.keys)
        for share, se in jk.values():
            assert 0.0 <= share <= 1.0
            assert se >= 0.0
        # Orchestration's point estimate is the Fig. 4 share.
        assert jk["orchestration"][0] == pytest.approx(11 / 28)

    def test_orchestration_exceeds_energy_beyond_error(self, tools, applications, scheme):
        jk = jackknife_shares(tools, applications, scheme)
        orch_share, orch_se = jk["orchestration"]
        energy_share, energy_se = jk["energy-efficiency"]
        assert orch_share - orch_se > energy_share + energy_se

    def test_needs_two_applications(self, tools, scheme):
        single = ApplicationCatalog(
            [Application("only", "Only", "3.1",
                         selected_tools=("streamflow",))]
        )
        with pytest.raises(ValidationError):
            jackknife_shares(tools, single, scheme)
