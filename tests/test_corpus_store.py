"""Unit tests for the persistent :class:`CorpusStore`.

The store's contract is *parity*: on the same records, ``search`` and
``deduplicate`` must return bit-identical results to the in-memory
:class:`Corpus` — the index and the SQL-blocked dedup are allowed to be
faster, never different.
"""

import pytest

from repro.corpus.corpus import Corpus
from repro.corpus.publication import Publication
from repro.corpus.store import CorpusStore, SCHEMA_VERSION
from repro.data.bibliography import paper_bibliography
from repro.data.synthetic import synthetic_corpus
from repro.errors import (
    CorpusError,
    CorpusStoreError,
    DuplicateEntityError,
)

QUERIES = [
    "workflow",
    "workflow*",
    "workflow AND NOT survey",
    "(workflow OR pipeline) AND (hpc OR cloud)",
    '"workflow management"',
    "NOT workflow",
    "stream* OR batch*",
    '"task-based" OR runtime',
]


def _pub(key, title, year=2020, **kwargs):
    return Publication(key=key, title=title, year=year, **kwargs)


def _filled(corpus_like):
    store = CorpusStore()
    store.extend(list(corpus_like))
    return store


class TestStoreBasics:
    def test_add_and_getitem(self):
        store = CorpusStore()
        store.add(_pub("a", "A Title"))
        assert store["a"].title == "A Title"
        assert "a" in store
        assert "b" not in store
        assert 42 not in store
        assert len(store) == 1

    def test_getitem_unknown(self):
        with pytest.raises(CorpusError):
            CorpusStore()["zzz"]

    def test_iteration_preserves_insertion_order(self):
        pubs = [_pub(f"k{i}", f"Title {i}") for i in range(10)]
        store = _filled(pubs)
        assert [p.key for p in store] == [p.key for p in pubs]
        assert store.keys == tuple(p.key for p in pubs)

    def test_roundtrips_all_fields(self):
        pub = Publication(
            key="full", title="Full Record", authors=("Rossi, A.", "Verdi, B."),
            year=2021, venue="FGCS", abstract="Long abstract.",
            doi="10.1/x", url="https://example.org", keywords=("k1", "k2"),
            kind="article", language="en",
        )
        store = CorpusStore()
        store.add(pub)
        assert store["full"] == pub

    def test_duplicate_key_rejected_by_default(self):
        store = CorpusStore()
        store.add(_pub("a", "T"))
        with pytest.raises(DuplicateEntityError):
            store.add(_pub("a", "T2"))

    def test_collision_suffix_and_skip(self):
        store = CorpusStore()
        store.add(_pub("a", "First"))
        assert store.add(_pub("a", "Second"), on_collision="suffix") == "a-2"
        assert store.add(_pub("a", "Third"), on_collision="skip") is None
        assert store.keys == ("a", "a-2")

    def test_unknown_collision_policy(self):
        with pytest.raises(CorpusError):
            CorpusStore().add(_pub("a", "T"), on_collision="merge")

    def test_closed_store_raises(self):
        store = CorpusStore()
        store.close()
        store.close()  # idempotent
        with pytest.raises(CorpusStoreError):
            len(store)

    def test_context_manager_closes(self):
        with CorpusStore() as store:
            store.add(_pub("a", "T"))
        with pytest.raises(CorpusStoreError):
            len(store)

    def test_bad_batch_size(self):
        with pytest.raises(CorpusStoreError):
            CorpusStore().extend([], batch_size=0)


class TestIngestion:
    def test_ingest_bibtex_lenient_reports_rejects(self):
        store = CorpusStore()
        report = store.ingest_bibtex(
            """
            @misc{good, title = {Kept}}
            @misc{notitle, year = {2020}}
            @misc{uni, title = {Unicode Year}, year = {²⁰²⁰}}
            """,
            strict=False,
        )
        assert report.ingested == 2
        assert [r.key for r in report.rejected] == ["notitle"]
        assert store["uni"].year is None

    def test_ingest_bibtex_strict_rolls_back_batch(self):
        store = CorpusStore()
        from repro.errors import BibTeXError

        with pytest.raises(BibTeXError):
            store.ingest_bibtex(
                "@misc{good, title = {Kept}}\n@misc{bad, year = {2020}}"
            )
        # The failed batch was never committed.
        assert len(store) == 0

    def test_ingest_collision_policy(self):
        store = CorpusStore()
        report = store.ingest_bibtex(
            "@misc{k, title = {One}}\n@misc{k, title = {Two}}",
            on_collision="suffix",
        )
        assert report.ingested == 2
        assert report.renamed == 1
        assert store.keys == ("k", "k-2")

    def test_extend_accepts_generator(self):
        store = CorpusStore()
        report = store.extend(
            (_pub(f"k{i}", f"T {i}") for i in range(25)), batch_size=10
        )
        assert report.ingested == 25
        assert len(store) == 25

    def test_report_to_dict(self):
        report = CorpusStore().ingest_bibtex(
            "@misc{notitle, year = {2020}}", strict=False
        )
        payload = report.to_dict()
        assert payload["ingested"] == 0
        assert payload["rejected"][0][0] == "notitle"


class TestSearchParity:
    @pytest.fixture(scope="class")
    def seed_corpus(self):
        return paper_bibliography()

    @pytest.fixture(scope="class")
    def seed_store(self, seed_corpus):
        return _filled(seed_corpus)

    @pytest.mark.parametrize("query", QUERIES)
    def test_bit_identical_to_in_memory(self, seed_corpus, seed_store, query):
        assert seed_store.search(query) == seed_corpus.search(query)

    @pytest.mark.parametrize("query", QUERIES)
    def test_parity_on_synthetic(self, query):
        corpus = synthetic_corpus(150, seed=7)
        store = _filled(corpus)
        assert store.search(query) == corpus.search(query)

    def test_multiword_term_with_punctuation(self):
        pubs = [
            _pub("a", "A task-based runtime"),
            _pub("b", "A task based runtime"),
            _pub("c", "Databased runtimes"),
        ]
        store = _filled(pubs)
        assert [p.key for p in store.search("task-based")] == \
            [p.key for p in Corpus(pubs).search("task-based")]

    def test_empty_result(self):
        store = _filled([_pub("a", "Workflows")])
        assert store.search("zzzqqq") == []


class TestDedupParity:
    def test_parity_on_seed_corpus(self):
        corpus = paper_bibliography()
        store = _filled(corpus)
        store.deduplicate()
        assert list(store) == list(corpus.deduplicate())

    @pytest.mark.parametrize("seed", [0, 3])
    def test_parity_on_synthetic_with_duplicates(self, seed):
        corpus = synthetic_corpus(120, seed=seed, duplicate_fraction=0.25)
        store = _filled(corpus)
        summary = store.deduplicate()
        deduped = corpus.deduplicate()
        assert list(store) == list(deduped)
        assert summary.dropped == len(corpus) - len(deduped)
        assert summary.pairs_scored > 0

    def test_index_updated_after_merge(self):
        pubs = [
            _pub("a", "A very repeated workflow title"),
            _pub("b", "A VERY REPEATED WORKFLOW TITLE"),
            _pub("c", "Something unrelated"),
        ]
        store = _filled(pubs)
        summary = store.deduplicate()
        assert summary.clusters == 1
        assert [p.key for p in store.search("workflow*")] == ["a"]
        assert "b" not in store

    def test_validates_params(self):
        with pytest.raises(CorpusError):
            CorpusStore().deduplicate(threshold=0.0)

    def test_empty_store(self):
        summary = CorpusStore().deduplicate()
        assert summary.clusters == 0


class TestGrouping:
    def test_by_year_fills_gap_years(self):
        store = _filled([_pub("a", "T", 2020), _pub("b", "U", 2020),
                         _pub("c", "V", 2022)])
        assert store.by_year().to_dict() == {2020: 2, 2021: 0, 2022: 1}

    def test_by_year_matches_in_memory(self):
        corpus = synthetic_corpus(100, seed=1)
        store = _filled(corpus)
        assert store.by_year().to_dict() == corpus.by_year().to_dict()

    def test_by_year_requires_years(self):
        store = _filled([Publication(key="a", title="T")])
        with pytest.raises(CorpusError):
            store.by_year()

    def test_by_venue_matches_in_memory(self):
        corpus = paper_bibliography()
        store = _filled(corpus)
        assert store.by_venue().to_dict() == corpus.by_venue().to_dict()

    def test_by_venue_empty(self):
        with pytest.raises(CorpusError):
            CorpusStore().by_venue()

    def test_by_venue_sql_groups_then_normalizer_folds(self):
        # Distinct raw spellings share one canonical venue: the SQL
        # GROUP BY sees them as separate rows, the normalizer must fold
        # them afterwards — identical to the in-memory path.
        pubs = [
            _pub("a", "T1", venue="Future Generation Computer Systems"),
            _pub("b", "T2", venue="FGCS"),
            _pub("c", "T3", venue="Future generation computer systems "),
            _pub("d", "T4", venue=""),
            _pub("e", "T5"),
        ]
        store = _filled(pubs)
        corpus = Corpus(pubs)
        table = store.by_venue()
        assert table.to_dict() == corpus.by_venue().to_dict()
        raw_venues = {
            row[0]
            for row in store.db.execute("SELECT DISTINCT venue FROM pubs")
        }
        # More raw spellings than table rows proves folding happened
        # after (not instead of) the SQL aggregation.
        assert len(raw_venues) > len(table.labels)

    def test_year_range(self):
        store = _filled([_pub("a", "T", 2005), _pub("b", "U", 2021)])
        assert store.year_range() == (2005, 2021)

    def test_to_bibtex_roundtrip(self):
        corpus = paper_bibliography()
        store = _filled(corpus)
        assert store.to_bibtex() == corpus.to_bibtex()


class TestPersistence:
    def test_warm_reopen_serves_queries(self, tmp_path):
        path = tmp_path / "corpus.db"
        corpus = paper_bibliography()
        with CorpusStore(path) as store:
            store.extend(list(corpus))
            expected = store.search("workflow*")
        # Re-open: no re-ingestion, same contents, same query results.
        with CorpusStore(path) as store:
            assert len(store) == len(corpus)
            assert store.search("workflow*") == expected
            assert store.keys == corpus.keys

    def test_schema_version_mismatch_refused(self, tmp_path):
        path = tmp_path / "corpus.db"
        with CorpusStore(path) as store:
            store.db.execute(
                "UPDATE meta SET v = ? WHERE k = 'schema_version'",
                (str(SCHEMA_VERSION + 1),),
            )
            store.db.commit()
        with pytest.raises(CorpusStoreError):
            CorpusStore(path)

    def test_stats(self, tmp_path):
        path = tmp_path / "corpus.db"
        with CorpusStore(path) as store:
            store.add(_pub("a", "Workflow engines", 2020))
            stats = store.stats()
        assert stats["records"] == 1
        assert stats["terms"] >= 2
        assert stats["year_range"] == (2020, 2020)
        assert stats["path"] == str(path)


class TestTelemetry:
    def test_counters_and_spans_recorded(self):
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        store = CorpusStore(telemetry=telemetry)
        store.ingest_bibtex(
            "@misc{a, title = {Workflow one}}\n"
            "@misc{b, title = {WORKFLOW ONE}}\n"
            "@misc{c, title = {Unrelated text}}\n"
        )
        store.search("workflow")
        store.deduplicate()
        snapshot = telemetry.metrics.snapshot()
        assert snapshot["corpus.records_ingested"]["value"] == 3
        assert snapshot["corpus.query_hits"]["value"] == 2
        assert snapshot["corpus.dedup_clusters"]["value"] == 1
        names = {span.name for span in telemetry.tracer.spans()}
        assert {"corpus.ingest", "corpus.search", "corpus.dedup"} <= names

    def test_full_scan_counter(self):
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        store = CorpusStore(telemetry=telemetry)
        store.add(_pub("a", "Workflows"))
        store.search("NOT nothing")
        snapshot = telemetry.metrics.snapshot()
        assert snapshot["corpus.query_full_scans"]["value"] == 1


class TestLedgerRecord:
    def test_build_corpus_record(self):
        from repro.obs import build_corpus_record
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        store = CorpusStore(telemetry=telemetry)
        report = store.ingest_bibtex("@misc{a, title = {T}}")
        record = build_corpus_record(
            store, telemetry=telemetry, operation="ingest",
            summary=report.to_dict(), meta={"source": "unit-test"},
        )
        assert record.kind == "corpus-store"
        assert record.metrics["corpus.records"] == 1.0
        assert record.metrics["corpus.ingest.ingested"] == 1.0
        assert record.metrics["corpus.records_ingested"] == 1.0
        assert record.artifacts["corpus_keys"].n_items == 1
        assert record.meta["operation"] == "ingest"
        assert record.meta["source"] == "unit-test"

    def test_key_digest_pins_membership_and_order(self):
        from repro.obs import build_corpus_record

        a = _filled([_pub("x", "T1"), _pub("y", "T2")])
        b = _filled([_pub("y", "T2"), _pub("x", "T1")])
        ra = build_corpus_record(a)
        rb = build_corpus_record(b)
        digest_a = ra.artifacts["corpus_keys"]
        digest_b = rb.artifacts["corpus_keys"]
        assert digest_a.sha256 != digest_b.sha256
        assert digest_a.content_sha256 == digest_b.content_sha256
