"""Unit tests for the discrete-event schedule executor."""

import pytest

from repro.continuum.resources import default_continuum
from repro.continuum.scheduling import HeftScheduler, RoundRobinScheduler
from repro.continuum.simulate import simulate_schedule
from repro.continuum.workflow import layered_workflow, random_workflow
from repro.errors import ContinuumError


@pytest.fixture(scope="module")
def schedule():
    wf = random_workflow(50, seed=6, edge_probability=0.15)
    continuum = default_continuum(seed=6)
    return HeftScheduler().schedule(wf, continuum)


class TestNoJitter:
    def test_reproduces_plan_makespan(self, schedule):
        trace = simulate_schedule(schedule, jitter=0.0)
        assert trace.makespan == pytest.approx(schedule.makespan, rel=1e-9)
        assert trace.slowdown == pytest.approx(1.0)

    def test_same_resources_as_plan(self, schedule):
        trace = simulate_schedule(schedule, jitter=0.0)
        planned = {p.task: p.resource for p in schedule.placements}
        realized = {p.task: p.resource for p in trace.placements}
        assert planned == realized

    def test_energy_matches_plan(self, schedule):
        trace = simulate_schedule(schedule, jitter=0.0)
        assert trace.busy_energy == pytest.approx(schedule.busy_energy(), rel=1e-9)

    def test_round_robin_plan_also_executes(self):
        wf = layered_workflow(3, 4)
        continuum = default_continuum(seed=1)
        schedule = RoundRobinScheduler().schedule(wf, continuum)
        trace = simulate_schedule(schedule, jitter=0.0)
        assert trace.slowdown == pytest.approx(1.0, rel=1e-9)


class TestJitter:
    def test_deterministic_under_seed(self, schedule):
        a = simulate_schedule(schedule, jitter=0.3, seed=1)
        b = simulate_schedule(schedule, jitter=0.3, seed=1)
        assert a.makespan == b.makespan

    def test_all_tasks_executed(self, schedule):
        trace = simulate_schedule(schedule, jitter=0.5, seed=2)
        assert len(trace.placements) == len(schedule.workflow)

    def test_dependencies_respected_under_jitter(self, schedule):
        trace = simulate_schedule(schedule, jitter=0.5, seed=3)
        finish = {p.task: p.finish for p in trace.placements}
        start = {p.task: p.start for p in trace.placements}
        wf = schedule.workflow
        for src, dst in wf.edges:
            assert start[dst] >= finish[src] - 1e-9

    def test_no_overlap_per_resource_under_jitter(self, schedule):
        trace = simulate_schedule(schedule, jitter=0.4, seed=4)
        by_resource = {}
        for p in trace.placements:
            by_resource.setdefault(p.resource, []).append(p)
        for slots in by_resource.values():
            slots.sort(key=lambda p: p.start)
            for a, b in zip(slots, slots[1:]):
                assert b.start >= a.finish - 1e-9


class TestBatchedJitter:
    def test_batched_draw_matches_sequential_stream(self):
        # The compiled simulator draws all jitter factors in one
        # rng.lognormal(size=n) call; NumPy's Generator consumes the
        # stream identically to n scalar draws, so traces are unchanged
        # bit-for-bit.
        import numpy as np

        batched = np.random.default_rng(3).lognormal(
            mean=0.0, sigma=0.4, size=64
        )
        rng = np.random.default_rng(3)
        sequential = [
            float(rng.lognormal(mean=0.0, sigma=0.4)) for _ in range(64)
        ]
        assert batched.tolist() == sequential

    @pytest.mark.parametrize("jitter", [0.0, 0.35])
    def test_trace_matches_reference_loop(self, schedule, jitter):
        import numpy as np

        from repro.continuum.simulate import _simulate_reference

        compiled = simulate_schedule(schedule, jitter=jitter, seed=9)
        reference, _ = _simulate_reference(
            schedule, jitter, np.random.default_rng(9)
        )
        assert compiled.placements == reference.placements
        assert compiled.makespan == reference.makespan
        assert compiled.busy_energy == reference.busy_energy


class TestValidation:
    def test_negative_jitter(self, schedule):
        with pytest.raises(ContinuumError):
            simulate_schedule(schedule, jitter=-0.1)

    def test_seed_and_rng_exclusive(self, schedule):
        import numpy as np

        with pytest.raises(ContinuumError):
            simulate_schedule(
                schedule, jitter=0.1, seed=1, rng=np.random.default_rng(1)
            )
