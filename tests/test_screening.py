"""Unit tests for criteria, agreement statistics, and screening sessions."""

import pytest

from repro.corpus.publication import Publication
from repro.errors import AgreementError, ScreeningError
from repro.screening.agreement import (
    cohen_kappa,
    fleiss_kappa,
    interpret_kappa,
    krippendorff_alpha,
    observed_agreement,
)
from repro.screening.criteria import (
    has_all_keywords,
    has_any_keyword,
    language_is,
    min_length,
    predicate,
    venue_matches,
    year_between,
)
from repro.screening.review import Decision, ReviewRecord, ScreeningSession


def _pub(key, title, year=2020, **kwargs):
    return Publication(key=key, title=title, year=year, **kwargs)


class TestCriteria:
    def test_year_between(self):
        criterion = year_between(2015, 2023)
        assert criterion.evaluate(_pub("a", "T", 2020)).included
        assert not criterion.evaluate(_pub("a", "T", 2010)).included
        assert not criterion.evaluate(Publication(key="a", title="T")).included

    def test_year_range_validation(self):
        with pytest.raises(ScreeningError):
            year_between(2023, 2015)

    def test_has_any_keyword(self):
        criterion = has_any_keyword(["workflow", "pipeline"])
        assert criterion.evaluate(_pub("a", "A Workflow study")).included
        assert not criterion.evaluate(_pub("a", "Unrelated")).included

    def test_has_all_keywords(self):
        criterion = has_all_keywords(["workflow", "energy"])
        assert criterion.evaluate(
            _pub("a", "Energy-aware workflow scheduling")
        ).included
        assert not criterion.evaluate(_pub("a", "Workflow survey")).included

    def test_combinators_and_failure_provenance(self):
        criterion = year_between(2015, 2023) & has_any_keyword(["workflow"])
        outcome = criterion.evaluate(_pub("a", "Nothing relevant", 2010))
        assert not outcome.included
        assert len(outcome.failed) == 2

    def test_or_and_not(self):
        criterion = has_any_keyword(["survey"]) | ~year_between(2015, 2023)
        assert criterion.evaluate(_pub("a", "A survey", 2020)).included
        assert criterion.evaluate(_pub("a", "T", 1999)).included
        assert not criterion.evaluate(_pub("a", "T", 2020)).included

    def test_venue_matches(self):
        criterion = venue_matches("TPDS")
        assert criterion.evaluate(_pub("a", "T", venue="IEEE tpds")).included

    def test_min_length(self):
        criterion = min_length(3)
        assert criterion.evaluate(_pub("a", "T", abstract="one two three")).included
        assert not criterion.evaluate(_pub("a", "T", abstract="short")).included

    def test_language_is_lenient_on_missing(self):
        criterion = language_is("english")
        assert criterion.evaluate(_pub("a", "T")).included
        assert not criterion.evaluate(_pub("a", "T", language="italian")).included

    def test_predicate_decorator(self):
        @predicate("custom")
        def custom(item):
            return item.year == 2020

        assert custom.evaluate(_pub("a", "T", 2020)).included
        assert custom.evaluate(_pub("a", "T", 2021)).failed == ("custom",)

    def test_evaluation_error_wrapped(self):
        @predicate("explodes")
        def explodes(item):
            raise RuntimeError("boom")

        with pytest.raises(ScreeningError):
            explodes.evaluate(_pub("a", "T"))


class TestCohenKappa:
    def test_perfect(self):
        assert cohen_kappa(["a", "b", "a"], ["a", "b", "a"]) == pytest.approx(1.0)

    def test_chance_level_near_zero(self):
        # Independent labels with balanced marginals.
        a = ["x", "x", "y", "y"]
        b = ["x", "y", "x", "y"]
        assert abs(cohen_kappa(a, b)) < 1e-9

    def test_known_value(self):
        # Classic 2x2 example: po = 0.7, pe = 0.5 -> kappa = 0.4.
        a = ["y"] * 25 + ["y"] * 25 + ["n"] * 25 + ["n"] * 25
        b = ["y"] * 25 + ["n"] * 25 + ["y"] * 10 + ["n"] * 15 + ["y"] * 15 + ["n"] * 10
        # Construct explicitly: counts yy=20,yn=5,ny=10,nn=15 over 50.
        a = ["y"] * 20 + ["y"] * 5 + ["n"] * 10 + ["n"] * 15
        b = ["y"] * 20 + ["n"] * 5 + ["y"] * 10 + ["n"] * 15
        kappa = cohen_kappa(a, b)
        po = 35 / 50
        pe = (25 / 50) * (30 / 50) + (25 / 50) * (20 / 50)
        assert kappa == pytest.approx((po - pe) / (1 - pe))

    def test_single_label_degenerate(self):
        assert cohen_kappa(["a", "a"], ["a", "a"]) == 1.0

    def test_weighted_kappa_orders_matter(self):
        a = [1, 2, 3, 1, 2, 3]
        near = [1, 2, 2, 1, 3, 3]
        unweighted = cohen_kappa(a, near)
        linear = cohen_kappa(a, near, weights="linear")
        assert linear >= unweighted

    def test_unknown_weights(self):
        with pytest.raises(AgreementError):
            cohen_kappa(["a"], ["a"], weights="cubic")

    def test_length_mismatch(self):
        with pytest.raises(AgreementError):
            cohen_kappa(["a"], ["a", "b"])

    def test_empty(self):
        with pytest.raises(AgreementError):
            cohen_kappa([], [])


class TestFleissKappa:
    def test_perfect(self):
        rows = [{"a": 3}, {"b": 3}, {"a": 3}]
        assert fleiss_kappa(rows) == pytest.approx(1.0)

    def test_textbook_example(self):
        # Fleiss (1971) example yields kappa ~= 0.21.
        import numpy as np

        matrix = np.array([
            [0, 0, 0, 0, 14],
            [0, 2, 6, 4, 2],
            [0, 0, 3, 5, 6],
            [0, 3, 9, 2, 0],
            [2, 2, 8, 1, 1],
            [7, 7, 0, 0, 0],
            [3, 2, 6, 3, 0],
            [2, 5, 3, 2, 2],
            [6, 5, 2, 1, 0],
            [0, 2, 2, 3, 7],
        ])
        assert fleiss_kappa(matrix) == pytest.approx(0.2099, abs=1e-3)

    def test_unequal_raters_rejected(self):
        with pytest.raises(AgreementError):
            fleiss_kappa([{"a": 2}, {"a": 3}])

    def test_single_rater_rejected(self):
        with pytest.raises(AgreementError):
            fleiss_kappa([{"a": 1}, {"b": 1}])


class TestKrippendorff:
    def test_perfect(self):
        ratings = [["a", "b", "c"], ["a", "b", "c"]]
        assert krippendorff_alpha(ratings) == pytest.approx(1.0)

    def test_with_missing_data(self):
        ratings = [
            ["a", "a", None, "b"],
            ["a", "a", "b", "b"],
            [None, "a", "b", "b"],
        ]
        alpha = krippendorff_alpha(ratings)
        assert alpha == pytest.approx(1.0)

    def test_disagreement_lowers_alpha(self):
        good = krippendorff_alpha([["a", "b"] * 10, ["a", "b"] * 10])
        noisy = krippendorff_alpha([["a", "b"] * 10, ["b", "a"] * 10])
        assert noisy < good

    def test_validation(self):
        with pytest.raises(AgreementError):
            krippendorff_alpha([["a"]])
        with pytest.raises(AgreementError):
            krippendorff_alpha([["a"], ["a", "b"]])
        with pytest.raises(AgreementError):
            krippendorff_alpha([[None], [None]])


class TestInterpretKappa:
    @pytest.mark.parametrize(
        "value,label",
        [(-0.1, "poor"), (0.1, "slight"), (0.3, "fair"), (0.5, "moderate"),
         (0.7, "substantial"), (0.9, "almost perfect")],
    )
    def test_bands(self, value, label):
        assert interpret_kappa(value) == label

    def test_out_of_range(self):
        with pytest.raises(AgreementError):
            interpret_kappa(1.5)


class TestScreeningSession:
    @pytest.fixture
    def session(self):
        return ScreeningSession(["p1", "p2", "p3"], ["alice", "bob"])

    def test_record_and_conflicts(self, session):
        session.decide("p1", "alice", Decision.INCLUDE)
        session.decide("p1", "bob", Decision.INCLUDE)
        session.decide("p2", "alice", Decision.INCLUDE)
        session.decide("p2", "bob", Decision.EXCLUDE)
        session.decide("p3", "alice", Decision.EXCLUDE)
        session.decide("p3", "bob", Decision.EXCLUDE)
        assert session.conflicts() == ("p2",)
        assert session.is_complete()

    def test_double_decision_rejected(self, session):
        session.decide("p1", "alice", Decision.INCLUDE)
        with pytest.raises(ScreeningError):
            session.decide("p1", "alice", Decision.EXCLUDE)

    def test_resolve_majority_needs_adjudication_on_tie(self, session):
        for item in ("p1", "p2", "p3"):
            session.decide(item, "alice", Decision.INCLUDE)
            session.decide(item, "bob", Decision.EXCLUDE)
        with pytest.raises(ScreeningError):
            session.resolve()
        session.adjudicate("p1", Decision.INCLUDE)
        session.adjudicate("p2", Decision.EXCLUDE)
        session.adjudicate("p3", Decision.EXCLUDE)
        verdicts = session.resolve()
        assert verdicts == {"p1": True, "p2": False, "p3": False}

    def test_conservative_and_liberal(self, session):
        for item in ("p1", "p2", "p3"):
            session.decide(item, "alice", Decision.INCLUDE)
        session.decide("p1", "bob", Decision.INCLUDE)
        session.decide("p2", "bob", Decision.EXCLUDE)
        session.decide("p3", "bob", Decision.EXCLUDE)
        conservative = session.resolve(strategy="conservative")
        liberal = session.resolve(strategy="liberal")
        assert conservative == {"p1": True, "p2": False, "p3": False}
        assert liberal == {"p1": True, "p2": True, "p3": True}

    def test_resolve_requires_completion(self, session):
        session.decide("p1", "alice", Decision.INCLUDE)
        with pytest.raises(ScreeningError):
            session.resolve()

    def test_pairwise_kappa_and_raw_agreement(self, session):
        for item, bob_vote in zip(
            ("p1", "p2", "p3"),
            (Decision.INCLUDE, Decision.EXCLUDE, Decision.EXCLUDE),
        ):
            session.decide(item, "alice", Decision.INCLUDE if item != "p3"
                           else Decision.EXCLUDE)
            session.decide(item, "bob", bob_vote)
        assert 0.0 <= session.raw_agreement("alice", "bob") <= 1.0
        assert -1.0 <= session.pairwise_kappa("alice", "bob") <= 1.0

    def test_overall_kappa(self, session):
        for item in session.items:
            session.decide(item, "alice", Decision.INCLUDE)
            session.decide(item, "bob", Decision.INCLUDE)
        assert session.overall_kappa() == pytest.approx(1.0)

    def test_apply_criterion(self):
        pubs = [
            _pub("p1", "Workflow scheduling"),
            _pub("p2", "Unrelated topic"),
        ]
        session = ScreeningSession(["p1", "p2"], ["bot"])
        session.apply_criterion("bot", has_any_keyword(["workflow"]), pubs)
        assert session.decisions_for("p1")["bot"] is Decision.INCLUDE
        assert session.decisions_for("p2")["bot"] is Decision.EXCLUDE

    def test_validation(self):
        with pytest.raises(ScreeningError):
            ScreeningSession([], ["a"])
        with pytest.raises(ScreeningError):
            ScreeningSession(["i"], [])
        with pytest.raises(ScreeningError):
            ScreeningSession(["i", "i"], ["a"])
        with pytest.raises(ScreeningError):
            ReviewRecord("", "a", Decision.INCLUDE)
