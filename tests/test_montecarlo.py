"""Unit tests for the Monte-Carlo sweep engine."""

import numpy as np
import pytest

from repro.continuum import (
    CellStats,
    FixedHistogram,
    HeftScheduler,
    RunningStat,
    SimulationContext,
    SweepSpec,
    continuum_from_dict,
    continuum_to_dict,
    default_continuum,
    random_workflow,
    replicate_once,
    run_sweep,
    simulate_schedule,
    simulate_with_failures,
)
from repro.errors import ContinuumError, MonteCarloError
from repro.pipeline import ArtifactCache


@pytest.fixture(scope="module")
def continuum():
    return default_continuum(n_hpc=2, n_cloud=3, n_edge=5, seed=11)


@pytest.fixture(scope="module")
def workflow():
    return random_workflow(60, seed=11, output_range=(0.0, 0.3))


@pytest.fixture(scope="module")
def schedule(workflow, continuum):
    return HeftScheduler().schedule(workflow, continuum)


@pytest.fixture(scope="module")
def context(schedule):
    return SimulationContext(schedule)


class TestReplicationEquivalence:
    """The batched replay must be bit-identical to the one-shot simulators
    — this anchors every speedup claim to the reference semantics."""

    @pytest.mark.parametrize("policy", ["restart", "migrate"])
    def test_matches_simulate_with_failures(self, schedule, context, policy):
        for seed in range(10):
            trace = simulate_with_failures(
                schedule, mtbf=60.0, repair_time=2.0, policy=policy,
                seed=seed,
            )
            result = replicate_once(
                context, mtbf=60.0, repair_time=2.0, policy=policy,
                rng=np.random.default_rng(seed),
            )
            assert result.makespan == trace.makespan
            assert result.slowdown == trace.slowdown
            assert result.retries == trace.n_failures
            assert result.migrations == trace.n_migrations
            assert result.lost_work == trace.lost_work

    def test_matches_simulate_schedule_jitter(self, schedule, context):
        for seed in range(10):
            trace = simulate_schedule(schedule, jitter=0.25, seed=seed)
            result = replicate_once(
                context, jitter=0.25, rng=np.random.default_rng(seed)
            )
            assert result.makespan == trace.makespan

    def test_no_noise_reproduces_plan(self, schedule, context):
        result = replicate_once(context, rng=np.random.default_rng(0))
        assert result.makespan == schedule.makespan
        assert result.slowdown == 1.0
        assert result.retries == 0
        assert result.migrations == 0

    def test_near_zero_mtbf_aborts(self, context):
        with pytest.raises(ContinuumError):
            replicate_once(
                context, mtbf=1e-6, repair_time=0.0, max_attempts=5,
                rng=np.random.default_rng(0),
            )

    def test_parameter_validation(self, context):
        rng = np.random.default_rng(0)
        with pytest.raises(MonteCarloError):
            replicate_once(context, mtbf=0.0, rng=rng)
        with pytest.raises(MonteCarloError):
            replicate_once(context, mtbf=1.0, repair_time=-1.0, rng=rng)
        with pytest.raises(MonteCarloError):
            replicate_once(context, policy="pray", rng=rng)
        with pytest.raises(MonteCarloError):
            replicate_once(context, jitter=-0.1, rng=rng)
        with pytest.raises(MonteCarloError):
            replicate_once(context, max_attempts=0, rng=rng)


class TestRunningStat:
    def test_matches_numpy(self):
        rng = np.random.default_rng(3)
        values = rng.lognormal(0.0, 1.0, size=500)
        stat = RunningStat()
        for v in values:
            stat.add(float(v))
        assert stat.count == 500
        assert stat.mean == pytest.approx(values.mean(), rel=1e-12)
        assert stat.variance == pytest.approx(values.var(ddof=1), rel=1e-12)
        assert stat.std == pytest.approx(values.std(ddof=1), rel=1e-12)
        assert stat.min == values.min()
        assert stat.max == values.max()

    def test_degenerate_counts(self):
        stat = RunningStat()
        assert stat.variance == 0.0
        stat.add(4.0)
        assert stat.mean == 4.0
        assert stat.variance == 0.0


class TestFixedHistogram:
    def test_quantiles_track_numpy_within_bucket_width(self):
        rng = np.random.default_rng(5)
        values = rng.uniform(0.0, 100.0, size=5000)
        hist = FixedHistogram(0.0, 100.0, 200)
        for v in values:
            hist.add(float(v))
        width = 100.0 / 200
        for q in (0.5, 0.9, 0.99):
            assert hist.quantile(q) == pytest.approx(
                np.quantile(values, q), abs=2 * width
            )

    def test_out_of_range_clamps_to_edge_buckets(self):
        hist = FixedHistogram(0.0, 10.0, 10)
        hist.add(-5.0)
        hist.add(50.0)
        assert hist.counts[0] == 1
        assert hist.counts[-1] == 1
        assert hist.count == 2

    def test_log_buckets(self):
        hist = FixedHistogram(0.1, 100.0, 30, log=True)
        hist.add(1.0)
        assert hist.count == 1
        assert 0.1 <= hist.quantile(0.5) <= 100.0

    def test_validation(self):
        with pytest.raises(MonteCarloError):
            FixedHistogram(1.0, 1.0, 10)
        with pytest.raises(MonteCarloError):
            FixedHistogram(0.0, 1.0, 0)
        with pytest.raises(MonteCarloError):
            FixedHistogram(0.0, 1.0, 10, log=True)
        hist = FixedHistogram(0.0, 1.0, 10)
        with pytest.raises(MonteCarloError):
            hist.quantile(0.5)  # empty
        hist.add(0.5)
        with pytest.raises(MonteCarloError):
            hist.quantile(1.5)


class TestSweepSpecValidation:
    def test_rejects_empty_and_unknown(self, workflow, continuum):
        with pytest.raises(MonteCarloError):
            SweepSpec(workflows=(), continuum=continuum)
        with pytest.raises(MonteCarloError):
            SweepSpec(workflows=(workflow,), continuum=continuum,
                      schedulers=("alien",))
        with pytest.raises(MonteCarloError):
            SweepSpec(workflows=(workflow,), continuum=continuum,
                      replications=0)
        with pytest.raises(MonteCarloError):
            SweepSpec(workflows=(workflow,), continuum=continuum,
                      mtbfs=(0.0,))
        with pytest.raises(MonteCarloError):
            SweepSpec(workflows=(workflow,), continuum=continuum,
                      policies=("pray",))
        with pytest.raises(MonteCarloError):
            SweepSpec(workflows=(workflow,), continuum=continuum,
                      chunk_size=0)

    def test_rejects_duplicate_workflow_names(self, workflow, continuum):
        with pytest.raises(MonteCarloError):
            SweepSpec(workflows=(workflow, workflow), continuum=continuum)

    def test_cells_enumerate_full_grid(self, workflow, continuum):
        spec = SweepSpec(
            workflows=(workflow,), continuum=continuum,
            schedulers=("heft", "energy"), mtbfs=(None, 50.0),
            jitters=(0.0, 0.1), policies=("restart", "migrate"),
        )
        cells = spec.cells()
        assert len(cells) == 16
        assert len({c.cell_id for c in cells}) == 16


class TestSweepDeterminism:
    @pytest.fixture(scope="class")
    def spec(self, workflow, continuum):
        return SweepSpec(
            workflows=(workflow,), continuum=continuum,
            schedulers=("heft", "round_robin"), mtbfs=(None, 50.0),
            jitters=(0.0, 0.1), policies=("restart",),
            replications=20, seed=7, chunk_size=7,
        )

    def test_parallel_bit_identical_to_serial(self, spec):
        serial = run_sweep(spec, workers=0)
        parallel = run_sweep(spec, workers=2)
        assert serial.to_dict()["cells"] == parallel.to_dict()["cells"]

    def test_chunking_never_changes_results(self, spec):
        rechunked = SweepSpec(
            workflows=spec.workflows, continuum=spec.continuum,
            schedulers=spec.schedulers, mtbfs=spec.mtbfs,
            jitters=spec.jitters, policies=spec.policies,
            replications=spec.replications, seed=spec.seed, chunk_size=3,
        )
        assert (
            run_sweep(spec).to_dict()["cells"]
            == run_sweep(rechunked).to_dict()["cells"]
        )

    def test_cell_streams_do_not_depend_on_grid_shape(
        self, workflow, continuum, spec
    ):
        """A cell's statistics are content-addressed: the same cell inside
        a smaller grid produces bit-identical numbers."""
        small = SweepSpec(
            workflows=(workflow,), continuum=continuum,
            schedulers=("heft",), mtbfs=(50.0,), jitters=(0.0,),
            policies=("restart",), replications=20, seed=7,
        )
        full = {c.cell.cell_id: c for c in run_sweep(spec).cells}
        for stats in run_sweep(small).cells:
            assert stats.to_dict() == full[stats.cell.cell_id].to_dict()

    def test_seed_changes_results(self, spec, workflow, continuum):
        reseeded = SweepSpec(
            workflows=spec.workflows, continuum=spec.continuum,
            schedulers=spec.schedulers, mtbfs=spec.mtbfs,
            jitters=spec.jitters, policies=spec.policies,
            replications=spec.replications, seed=8,
        )
        a = run_sweep(spec).cells
        b = run_sweep(reseeded).cells
        noisy = [c.cell_id for c in spec.cells() if c.mtbf or c.jitter]
        assert any(
            x.metrics["makespan"].mean != y.metrics["makespan"].mean
            for x, y in zip(a, b)
            if x.cell.cell_id in noisy
        )

    def test_replication_workers_invalid(self, spec):
        with pytest.raises(MonteCarloError):
            run_sweep(spec, workers=-1)


class TestSweepAggregation:
    def test_summaries_match_naive_replications(self, workflow, continuum):
        """The streamed Welford aggregate equals numpy over the raw
        per-replication values recomputed via the one-shot simulator."""
        from repro.continuum.montecarlo import (
            _cell_entropy,
            _cell_identity,
            _continuum_fingerprint,
            _replication_rng,
            _workflow_fingerprint,
        )

        spec = SweepSpec(
            workflows=(workflow,), continuum=continuum,
            schedulers=("heft",), mtbfs=(40.0,), policies=("restart",),
            replications=60, seed=3,
        )
        result = run_sweep(spec)
        stats = result.cells[0]

        schedule = HeftScheduler().schedule(workflow, continuum)
        cell = spec.cells()[0]
        entropy = _cell_entropy(_cell_identity(
            spec, cell,
            {workflow.name: _workflow_fingerprint(workflow)},
            _continuum_fingerprint(continuum),
        ))
        makespans = []
        retries = []
        for rep in range(spec.replications):
            trace = simulate_with_failures(
                schedule, mtbf=40.0, repair_time=spec.repair_time,
                policy="restart", rng=_replication_rng(entropy, rep),
            )
            makespans.append(trace.makespan)
            retries.append(trace.n_failures)
        summary = stats.metrics["makespan"]
        assert summary.count == 60
        assert summary.mean == pytest.approx(np.mean(makespans), rel=1e-12)
        assert summary.std == pytest.approx(
            np.std(makespans, ddof=1), rel=1e-9
        )
        assert summary.min == min(makespans)
        assert summary.max == max(makespans)
        assert stats.metrics["retries"].mean == pytest.approx(
            np.mean(retries), rel=1e-12
        )

    def test_prefix_stability_in_replications(self, workflow, continuum):
        """The first R replications of a larger run are the same draws —
        min/max over a prefix are bounded by the superset's."""
        base = dict(
            workflows=(workflow,), continuum=continuum,
            schedulers=("heft",), mtbfs=(40.0,), seed=3,
        )
        small = run_sweep(SweepSpec(replications=20, **base)).cells[0]
        big = run_sweep(SweepSpec(replications=40, **base)).cells[0]
        assert small.metrics["makespan"].min >= big.metrics["makespan"].min
        assert small.metrics["makespan"].max <= big.metrics["makespan"].max

    def test_cellstats_round_trips(self, workflow, continuum):
        spec = SweepSpec(
            workflows=(workflow,), continuum=continuum,
            mtbfs=(50.0,), replications=10, seed=1,
        )
        stats = run_sweep(spec).cells[0]
        assert CellStats.from_dict(stats.to_dict()) == stats


class TestSweepCache:
    def test_warm_cache_runs_zero_simulations(self, workflow, continuum):
        spec = SweepSpec(
            workflows=(workflow,), continuum=continuum,
            schedulers=("heft", "round_robin"), mtbfs=(None, 50.0),
            replications=15, seed=2,
        )
        cache = ArtifactCache()
        cold = run_sweep(spec, cache=cache)
        assert cold.n_replications_run == 4 * 15
        assert len(cold.computed) == 4 and not cold.cached
        warm = run_sweep(spec, cache=cache)
        assert warm.n_replications_run == 0
        assert len(warm.cached) == 4 and not warm.computed
        assert warm.to_dict()["cells"] == cold.to_dict()["cells"]

    def test_on_disk_cache_survives_processes(self, workflow, continuum,
                                              tmp_path):
        spec = SweepSpec(
            workflows=(workflow,), continuum=continuum,
            mtbfs=(50.0,), replications=10, seed=4,
        )
        cold = run_sweep(spec, cache=ArtifactCache(tmp_path))
        warm = run_sweep(spec, cache=ArtifactCache(tmp_path))
        assert warm.n_replications_run == 0
        assert warm.to_dict()["cells"] == cold.to_dict()["cells"]

    def test_changed_spec_misses(self, workflow, continuum):
        cache = ArtifactCache()
        base = dict(
            workflows=(workflow,), continuum=continuum,
            mtbfs=(50.0,), replications=10,
        )
        run_sweep(SweepSpec(seed=1, **base), cache=cache)
        reseeded = run_sweep(SweepSpec(seed=2, **base), cache=cache)
        assert reseeded.n_replications_run == 10
        grown = run_sweep(
            SweepSpec(seed=1, **{**base, "replications": 11}), cache=cache
        )
        assert grown.n_replications_run == 11


class TestSweepIntegration:
    def test_telemetry_counters_and_span(self, workflow, continuum):
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        spec = SweepSpec(
            workflows=(workflow,), continuum=continuum,
            mtbfs=(50.0,), replications=12, seed=0,
        )
        run_sweep(spec, cache=ArtifactCache(), telemetry=telemetry)
        snapshot = telemetry.metrics.snapshot()
        assert snapshot["mc.replications"]["value"] == 12
        assert snapshot["mc.cells_computed"]["value"] == 1
        names = {span.name for span in telemetry.tracer.spans()}
        assert "sweep" in names
        assert "schedule.heft" in names

    def test_registry_records_sweep(self, workflow, continuum, tmp_path):
        from repro.obs import RunRegistry

        registry = RunRegistry(tmp_path)
        spec = SweepSpec(
            workflows=(workflow,), continuum=continuum,
            mtbfs=(50.0,), replications=8, seed=0,
        )
        run_sweep(spec, registry=registry)
        record = registry.last(1)[0]
        assert record.kind == "mc-sweep"
        assert record.metrics["mc.replications"] == 8.0
        assert record.artifacts["cells"].n_items == 1
        assert record.config_digest

    def test_sweep_record_artifact_digest_is_deterministic(
        self, workflow, continuum, tmp_path
    ):
        from repro.obs import RunRegistry

        registry = RunRegistry(tmp_path)
        spec = SweepSpec(
            workflows=(workflow,), continuum=continuum,
            mtbfs=(50.0,), replications=8, seed=0,
        )
        run_sweep(spec, registry=registry)
        run_sweep(spec, registry=registry)
        first, second = registry.last(2)
        assert (
            first.artifacts["cells"].sha256
            == second.artifacts["cells"].sha256
        )


class TestContinuumSerialization:
    def test_round_trip(self, continuum):
        clone = continuum_from_dict(continuum_to_dict(continuum))
        assert clone.keys == continuum.keys
        assert np.array_equal(clone.bandwidth, continuum.bandwidth)
        assert np.array_equal(clone.latency, continuum.latency)
        for key in continuum.keys:
            assert clone[key] == continuum[key]

    def test_dict_is_strict_json(self, continuum):
        import json

        payload = json.dumps(continuum_to_dict(continuum), allow_nan=False)
        assert continuum_from_dict(json.loads(payload)).keys == continuum.keys

    def test_version_and_malformed_rejected(self, continuum):
        from repro.errors import SerializationError

        with pytest.raises(SerializationError):
            continuum_from_dict({"format_version": 99})
        bad = continuum_to_dict(continuum)
        del bad["resources"]
        with pytest.raises(SerializationError):
            continuum_from_dict(bad)


# -- mergeable aggregation (engine v2) ----------------------------------------


class TestQuantileSketch:
    """The sketch behind every cell's quantiles: alpha-bounded error and
    an exact, associative merge (the distribution-ready guarantee)."""

    def test_error_bound_at_scale(self):
        from repro.continuum import QuantileSketch

        rng = np.random.default_rng(9)
        values = rng.lognormal(1.0, 1.2, size=20_000)
        sketch = QuantileSketch(0.01)
        for v in values:
            sketch.add(float(v))
        assert sketch.count == values.size
        for q in (0.01, 0.1, 0.5, 0.9, 0.99, 0.999):
            exact = float(np.quantile(values, q))
            # alpha-relative against a true sample value at the rank;
            # 2*alpha absorbs np.quantile's interpolation between
            # neighboring order statistics.
            assert abs(sketch.quantile(q) - exact) <= 2 * 0.01 * exact

    def test_signed_and_zero_values(self):
        from repro.continuum import QuantileSketch

        sketch = QuantileSketch(0.01)
        for v in (-100.0, -1.0, 0.0, 0.0, 1.0, 100.0):
            sketch.add(v)
        assert sketch.count == 6
        assert sketch.quantile(0.0) == pytest.approx(-100.0, rel=0.01)
        assert sketch.quantile(0.5) == 0.0
        assert sketch.quantile(1.0) == pytest.approx(100.0, rel=0.01)

    def test_merge_exactness_on_random_split(self):
        from repro.continuum import QuantileSketch

        rng = np.random.default_rng(11)
        values = rng.normal(0.0, 50.0, size=5000)
        whole = QuantileSketch(0.01)
        parts = [QuantileSketch(0.01) for _ in range(7)]
        owners = rng.integers(0, 7, size=values.size)
        for v, owner in zip(values, owners):
            whole.add(float(v))
            parts[owner].add(float(v))
        merged = parts[0]
        for part in parts[1:]:
            merged.merge(part)
        assert merged == whole
        assert merged.to_dict() == whole.to_dict()

    def test_round_trip_and_canonical_payload(self):
        from repro.continuum import QuantileSketch

        sketch = QuantileSketch(0.01)
        for v in (0.5, -3.0, 0.0, 42.0, 0.5):
            sketch.add(v)
        clone = QuantileSketch.from_dict(sketch.to_dict())
        assert clone == sketch
        assert clone.to_dict() == sketch.to_dict()

    def test_validation(self):
        from repro.continuum import QuantileSketch
        from repro.errors import StatsError

        with pytest.raises(StatsError):
            QuantileSketch(0.0)
        with pytest.raises(StatsError):
            QuantileSketch(1.0)
        sketch = QuantileSketch(0.01)
        with pytest.raises(StatsError):
            sketch.add(float("nan"))
        with pytest.raises(StatsError):
            sketch.add(float("inf"))
        with pytest.raises(StatsError):
            sketch.add(1.0, weight=0)
        with pytest.raises(StatsError):
            sketch.quantile(0.5)  # empty
        sketch.add(1.0)
        with pytest.raises(StatsError):
            sketch.quantile(1.5)
        other = QuantileSketch(0.02)
        with pytest.raises(StatsError):
            sketch.merge(other)

    def test_refuses_to_collapse_past_max_buckets(self):
        from repro.continuum import QuantileSketch
        from repro.errors import StatsError

        sketch = QuantileSketch(0.5, max_buckets=4)
        with pytest.raises(StatsError):
            for exponent in range(32):
                sketch.add(10.0 ** exponent)


class TestQuantileSketchProperties:
    """Merge is exact: merge-of-parts equals the single-stream state for
    ANY split and ANY grouping — the property distribution relies on."""

    values_strategy = __import__("hypothesis").strategies.lists(
        __import__("hypothesis").strategies.floats(
            allow_nan=False, allow_infinity=False,
            min_value=-1e12, max_value=1e12,
        ),
        max_size=120,
    )

    @staticmethod
    def _sketch_of(values):
        from repro.continuum import QuantileSketch

        sketch = QuantileSketch(0.02)
        for v in values:
            sketch.add(v)
        return sketch

    def test_merge_of_parts_equals_single_stream(self):
        from hypothesis import given
        from hypothesis import strategies as st

        @given(values=self.values_strategy, split=st.integers(0, 120))
        def check(values, split):
            split = min(split, len(values))
            merged = self._sketch_of(values[:split]).merge(
                self._sketch_of(values[split:])
            )
            assert merged == self._sketch_of(values)

        check()

    def test_merge_associative_and_commutative(self):
        from hypothesis import given

        @given(
            a=self.values_strategy,
            b=self.values_strategy,
            c=self.values_strategy,
        )
        def check(a, b, c):
            sa, sb, sc = map(self._sketch_of, (a, b, c))
            left = sa.copy().merge(sb).merge(sc)
            right = sa.copy().merge(sb.copy().merge(sc))
            flipped = sc.copy().merge(sb).merge(sa)
            assert left == right == flipped

        check()


class TestRunningStatMerge:
    def test_merge_matches_full_stream_moments(self):
        rng = np.random.default_rng(13)
        values = rng.lognormal(0.0, 1.0, size=700)
        merged = RunningStat()
        for chunk in np.array_split(values, 5):
            part = RunningStat()
            for v in chunk:
                part.add(float(v))
            merged.merge(part)
        assert merged.count == values.size
        assert merged.mean == pytest.approx(values.mean(), rel=1e-12)
        assert merged.variance == pytest.approx(values.var(ddof=1), rel=1e-10)
        assert merged.min == values.min()
        assert merged.max == values.max()

    def test_merge_with_empty_is_identity(self):
        stat = RunningStat()
        stat.add(3.0)
        stat.add(5.0)
        before = stat.to_dict()
        stat.merge(RunningStat())
        assert stat.to_dict() == before
        fresh = RunningStat()
        fresh.merge(stat)
        assert fresh.to_dict() == before

    def test_round_trip(self):
        stat = RunningStat()
        for v in (1.0, 2.0, 7.5):
            stat.add(v)
        clone = RunningStat.from_dict(stat.to_dict())
        assert clone.to_dict() == stat.to_dict()
        assert clone.variance == stat.variance


class TestFixedHistogramClampEdges:
    """Out-of-range mass answers quantiles with the exact range edge —
    a constant out-of-range stream must not spread across a bucket."""

    def test_all_mass_in_overflow_returns_edge(self):
        hist = FixedHistogram(0.0, 10.0, 10)
        for _ in range(100):
            hist.add(50.0)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert hist.quantile(q) == 10.0

    def test_all_mass_in_underflow_returns_edge(self):
        hist = FixedHistogram(0.0, 10.0, 10)
        for _ in range(100):
            hist.add(-5.0)
        for q in (0.0, 0.5, 1.0):
            assert hist.quantile(q) == 0.0

    def test_mixed_mass_keeps_interior_interpolation(self):
        hist = FixedHistogram(0.0, 10.0, 10)
        for v in (1.5, 2.5, 3.5, 4.5):
            hist.add(v)
        hist.add(99.0)  # one clamped-high observation
        assert hist.clamped_high == 1
        assert hist.quantile(1.0) == 10.0  # inside the clamped tail
        assert 0.0 < hist.quantile(0.4) < 10.0

    def test_in_range_values_do_not_count_as_clamped(self):
        hist = FixedHistogram(0.0, 10.0, 10)
        hist.add(0.0)
        hist.add(10.0)
        assert hist.clamped_low == 0
        assert hist.clamped_high == 0


class TestCellAggregate:
    @staticmethod
    def _rows(seed, n):
        rng = np.random.default_rng(seed)
        return [
            (
                float(rng.lognormal(3.0, 0.4)),
                float(rng.lognormal(0.1, 0.05)),
                int(rng.integers(0, 5)),
                int(rng.integers(0, 3)),
                float(rng.exponential(2.0)),
            )
            for _ in range(n)
        ]

    def test_merge_of_parts_equals_single_stream(self):
        from repro.continuum import CellAggregate

        rows = self._rows(17, 400)
        whole = CellAggregate()
        for row in rows:
            whole.add(row)
        first, second = CellAggregate(), CellAggregate()
        for row in rows[:123]:
            first.add(row)
        for row in rows[123:]:
            second.add(row)
        first.merge(second)
        # Sketch states are exactly equal; moments agree to float noise.
        assert {
            name: sk.to_dict() for name, sk in first.sketches.items()
        } == {name: sk.to_dict() for name, sk in whole.sketches.items()}
        for name in whole.stats:
            assert first.stats[name].count == whole.stats[name].count
            assert first.stats[name].mean == pytest.approx(
                whole.stats[name].mean, rel=1e-12
            )

    def test_round_trip(self):
        from repro.continuum import CellAggregate

        aggregate = CellAggregate()
        for row in self._rows(19, 50):
            aggregate.add(row)
        clone = CellAggregate.from_dict(aggregate.to_dict())
        assert clone.to_dict() == aggregate.to_dict()
        assert clone.summaries() == aggregate.summaries()

    def test_malformed_payload_rejected(self):
        from repro.continuum import CellAggregate

        with pytest.raises(MonteCarloError):
            CellAggregate.from_dict({"stats": {}})


# -- adaptive sequential stopping ---------------------------------------------


class TestAdaptiveSpecValidation:
    def test_max_replications_requires_target_ci(self, workflow, continuum):
        with pytest.raises(MonteCarloError):
            SweepSpec(workflows=(workflow,), continuum=continuum,
                      max_replications=50)

    def test_target_ci_must_be_positive_finite(self, workflow, continuum):
        for bad in (0.0, -0.1, float("nan"), float("inf")):
            with pytest.raises(MonteCarloError):
                SweepSpec(workflows=(workflow,), continuum=continuum,
                          target_ci=bad)

    def test_unknown_primary_metric(self, workflow, continuum):
        with pytest.raises(MonteCarloError):
            SweepSpec(workflows=(workflow,), continuum=continuum,
                      target_ci=0.05, primary_metric="vibes")

    def test_replication_plan_modes(self, workflow, continuum):
        fixed = SweepSpec(workflows=(workflow,), continuum=continuum,
                          replications=30)
        assert not fixed.adaptive
        assert fixed.replication_cap == 30
        assert fixed.replication_plan()["mode"] == "fixed"
        adaptive = SweepSpec(workflows=(workflow,), continuum=continuum,
                             replications=30, target_ci=0.05,
                             max_replications=90, chunk_size=10)
        assert adaptive.adaptive
        assert adaptive.replication_cap == 90
        plan = adaptive.replication_plan()
        assert plan["mode"] == "adaptive"
        assert plan["round_size"] == 10
        defaulted = SweepSpec(workflows=(workflow,), continuum=continuum,
                              replications=30, target_ci=0.05)
        assert defaulted.replication_cap == 30


class TestAdaptiveSweep:
    @pytest.fixture(scope="class")
    def spec(self, workflow, continuum):
        return SweepSpec(
            workflows=(workflow,), continuum=continuum,
            schedulers=("heft", "round_robin"), mtbfs=(None, 40.0),
            jitters=(0.1,), policies=("restart",),
            replications=80, seed=5, chunk_size=8,
            target_ci=0.03, max_replications=80,
        )

    def test_bit_identical_across_workers_and_steal_orders(self, spec):
        reference = run_sweep(spec, workers=0).to_dict()
        for workers in (1, 2, 4):
            assert run_sweep(spec, workers=workers).to_dict() == reference
        for steal_seed in (0, 1, 99):
            assert (
                run_sweep(spec, workers=2, steal_seed=steal_seed).to_dict()
                == reference
            )
            assert (
                run_sweep(spec, workers=0, steal_seed=steal_seed).to_dict()
                == reference
            )

    def test_every_stopped_cell_met_the_target(self, spec):
        import math

        result = run_sweep(spec)
        assert any(c.replications < spec.replication_cap for c in result.cells)
        for stats in result.cells:
            assert stats.replications <= spec.replication_cap
            assert stats.replications % spec.chunk_size == 0
            summary = stats.metrics[spec.primary_metric]
            if stats.replications < spec.replication_cap:
                half = 1.96 * summary.std / math.sqrt(summary.count)
                assert half <= spec.target_ci * abs(summary.mean) * 1.0001

    def test_savings_are_reported(self, spec):
        result = run_sweep(spec)
        assert result.n_replications_budget == spec.replication_cap * len(
            result.cells
        )
        assert 0 < result.n_replications_run < result.n_replications_budget
        assert result.n_replications_saved == (
            result.n_replications_budget - result.n_replications_run
        )

    def test_adaptive_prefix_matches_fixed_run(self, spec, workflow,
                                               continuum):
        """A cell that stopped at n replications aggregated exactly the
        first n draws of the fixed-mode stream (same entropy reuse)."""
        adaptive = {c.cell.cell_id: c for c in run_sweep(spec).cells}
        for cell_id, stats in adaptive.items():
            fixed = SweepSpec(
                workflows=(workflow,), continuum=continuum,
                schedulers=(stats.cell.scheduler,),
                mtbfs=(stats.cell.mtbf,), jitters=(stats.cell.jitter,),
                policies=(stats.cell.policy,),
                replications=stats.replications, seed=spec.seed,
            )
            fixed_stats = run_sweep(fixed).cells[0]
            assert fixed_stats.metrics == stats.metrics

    def test_adaptive_cache_round_trip(self, spec):
        cache = ArtifactCache()
        cold = run_sweep(spec, cache=cache)
        warm = run_sweep(spec, cache=cache)
        assert warm.n_replications_run == 0
        assert len(warm.cached) == len(spec.cells())
        assert warm.to_dict()["cells"] == cold.to_dict()["cells"]

    def test_round_size_is_part_of_adaptive_identity(self, spec):
        """Adaptive stop checks happen at round boundaries, so a different
        chunk_size is a different experiment — it must miss the cache."""
        cache = ArtifactCache()
        run_sweep(spec, cache=cache)
        rechunked = SweepSpec(
            workflows=spec.workflows, continuum=spec.continuum,
            schedulers=spec.schedulers, mtbfs=spec.mtbfs,
            jitters=spec.jitters, policies=spec.policies,
            replications=spec.replications, seed=spec.seed, chunk_size=16,
            target_ci=spec.target_ci, max_replications=spec.max_replications,
        )
        result = run_sweep(rechunked, cache=cache)
        assert result.n_replications_run > 0

    def test_impossible_target_runs_to_cap(self, workflow, continuum):
        spec = SweepSpec(
            workflows=(workflow,), continuum=continuum,
            schedulers=("round_robin",), mtbfs=(40.0,), jitters=(0.2,),
            policies=("restart",), replications=24, seed=5, chunk_size=8,
            target_ci=1e-9,
        )
        result = run_sweep(spec)
        assert result.cells[0].replications == 24
        assert result.n_replications_run == result.n_replications_budget

    def test_zero_variance_cell_stops_after_one_round(self, workflow,
                                                      continuum):
        spec = SweepSpec(
            workflows=(workflow,), continuum=continuum,
            schedulers=("heft",), mtbfs=(None,), jitters=(0.0,),
            policies=("restart",), replications=64, seed=5, chunk_size=8,
            target_ci=0.05,
        )
        result = run_sweep(spec)
        assert result.cells[0].replications == 8

    def test_telemetry_counts_savings(self, spec):
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        result = run_sweep(spec, telemetry=telemetry)
        snapshot = telemetry.metrics.snapshot()
        assert snapshot["mc.replications"]["value"] == (
            result.n_replications_run
        )
        assert snapshot["mc.replications_saved"]["value"] == (
            result.n_replications_saved
        )
        assert snapshot["mc.rounds"]["value"] > 0
