"""Unit tests for the Monte-Carlo sweep engine."""

import numpy as np
import pytest

from repro.continuum import (
    CellStats,
    FixedHistogram,
    HeftScheduler,
    RunningStat,
    SimulationContext,
    SweepSpec,
    continuum_from_dict,
    continuum_to_dict,
    default_continuum,
    random_workflow,
    replicate_once,
    run_sweep,
    simulate_schedule,
    simulate_with_failures,
)
from repro.errors import ContinuumError, MonteCarloError
from repro.pipeline import ArtifactCache


@pytest.fixture(scope="module")
def continuum():
    return default_continuum(n_hpc=2, n_cloud=3, n_edge=5, seed=11)


@pytest.fixture(scope="module")
def workflow():
    return random_workflow(60, seed=11, output_range=(0.0, 0.3))


@pytest.fixture(scope="module")
def schedule(workflow, continuum):
    return HeftScheduler().schedule(workflow, continuum)


@pytest.fixture(scope="module")
def context(schedule):
    return SimulationContext(schedule)


class TestReplicationEquivalence:
    """The batched replay must be bit-identical to the one-shot simulators
    — this anchors every speedup claim to the reference semantics."""

    @pytest.mark.parametrize("policy", ["restart", "migrate"])
    def test_matches_simulate_with_failures(self, schedule, context, policy):
        for seed in range(10):
            trace = simulate_with_failures(
                schedule, mtbf=60.0, repair_time=2.0, policy=policy,
                seed=seed,
            )
            result = replicate_once(
                context, mtbf=60.0, repair_time=2.0, policy=policy,
                rng=np.random.default_rng(seed),
            )
            assert result.makespan == trace.makespan
            assert result.slowdown == trace.slowdown
            assert result.retries == trace.n_failures
            assert result.migrations == trace.n_migrations
            assert result.lost_work == trace.lost_work

    def test_matches_simulate_schedule_jitter(self, schedule, context):
        for seed in range(10):
            trace = simulate_schedule(schedule, jitter=0.25, seed=seed)
            result = replicate_once(
                context, jitter=0.25, rng=np.random.default_rng(seed)
            )
            assert result.makespan == trace.makespan

    def test_no_noise_reproduces_plan(self, schedule, context):
        result = replicate_once(context, rng=np.random.default_rng(0))
        assert result.makespan == schedule.makespan
        assert result.slowdown == 1.0
        assert result.retries == 0
        assert result.migrations == 0

    def test_near_zero_mtbf_aborts(self, context):
        with pytest.raises(ContinuumError):
            replicate_once(
                context, mtbf=1e-6, repair_time=0.0, max_attempts=5,
                rng=np.random.default_rng(0),
            )

    def test_parameter_validation(self, context):
        rng = np.random.default_rng(0)
        with pytest.raises(MonteCarloError):
            replicate_once(context, mtbf=0.0, rng=rng)
        with pytest.raises(MonteCarloError):
            replicate_once(context, mtbf=1.0, repair_time=-1.0, rng=rng)
        with pytest.raises(MonteCarloError):
            replicate_once(context, policy="pray", rng=rng)
        with pytest.raises(MonteCarloError):
            replicate_once(context, jitter=-0.1, rng=rng)
        with pytest.raises(MonteCarloError):
            replicate_once(context, max_attempts=0, rng=rng)


class TestRunningStat:
    def test_matches_numpy(self):
        rng = np.random.default_rng(3)
        values = rng.lognormal(0.0, 1.0, size=500)
        stat = RunningStat()
        for v in values:
            stat.add(float(v))
        assert stat.count == 500
        assert stat.mean == pytest.approx(values.mean(), rel=1e-12)
        assert stat.variance == pytest.approx(values.var(ddof=1), rel=1e-12)
        assert stat.std == pytest.approx(values.std(ddof=1), rel=1e-12)
        assert stat.min == values.min()
        assert stat.max == values.max()

    def test_degenerate_counts(self):
        stat = RunningStat()
        assert stat.variance == 0.0
        stat.add(4.0)
        assert stat.mean == 4.0
        assert stat.variance == 0.0


class TestFixedHistogram:
    def test_quantiles_track_numpy_within_bucket_width(self):
        rng = np.random.default_rng(5)
        values = rng.uniform(0.0, 100.0, size=5000)
        hist = FixedHistogram(0.0, 100.0, 200)
        for v in values:
            hist.add(float(v))
        width = 100.0 / 200
        for q in (0.5, 0.9, 0.99):
            assert hist.quantile(q) == pytest.approx(
                np.quantile(values, q), abs=2 * width
            )

    def test_out_of_range_clamps_to_edge_buckets(self):
        hist = FixedHistogram(0.0, 10.0, 10)
        hist.add(-5.0)
        hist.add(50.0)
        assert hist.counts[0] == 1
        assert hist.counts[-1] == 1
        assert hist.count == 2

    def test_log_buckets(self):
        hist = FixedHistogram(0.1, 100.0, 30, log=True)
        hist.add(1.0)
        assert hist.count == 1
        assert 0.1 <= hist.quantile(0.5) <= 100.0

    def test_validation(self):
        with pytest.raises(MonteCarloError):
            FixedHistogram(1.0, 1.0, 10)
        with pytest.raises(MonteCarloError):
            FixedHistogram(0.0, 1.0, 0)
        with pytest.raises(MonteCarloError):
            FixedHistogram(0.0, 1.0, 10, log=True)
        hist = FixedHistogram(0.0, 1.0, 10)
        with pytest.raises(MonteCarloError):
            hist.quantile(0.5)  # empty
        hist.add(0.5)
        with pytest.raises(MonteCarloError):
            hist.quantile(1.5)


class TestSweepSpecValidation:
    def test_rejects_empty_and_unknown(self, workflow, continuum):
        with pytest.raises(MonteCarloError):
            SweepSpec(workflows=(), continuum=continuum)
        with pytest.raises(MonteCarloError):
            SweepSpec(workflows=(workflow,), continuum=continuum,
                      schedulers=("alien",))
        with pytest.raises(MonteCarloError):
            SweepSpec(workflows=(workflow,), continuum=continuum,
                      replications=0)
        with pytest.raises(MonteCarloError):
            SweepSpec(workflows=(workflow,), continuum=continuum,
                      mtbfs=(0.0,))
        with pytest.raises(MonteCarloError):
            SweepSpec(workflows=(workflow,), continuum=continuum,
                      policies=("pray",))
        with pytest.raises(MonteCarloError):
            SweepSpec(workflows=(workflow,), continuum=continuum,
                      chunk_size=0)

    def test_rejects_duplicate_workflow_names(self, workflow, continuum):
        with pytest.raises(MonteCarloError):
            SweepSpec(workflows=(workflow, workflow), continuum=continuum)

    def test_cells_enumerate_full_grid(self, workflow, continuum):
        spec = SweepSpec(
            workflows=(workflow,), continuum=continuum,
            schedulers=("heft", "energy"), mtbfs=(None, 50.0),
            jitters=(0.0, 0.1), policies=("restart", "migrate"),
        )
        cells = spec.cells()
        assert len(cells) == 16
        assert len({c.cell_id for c in cells}) == 16


class TestSweepDeterminism:
    @pytest.fixture(scope="class")
    def spec(self, workflow, continuum):
        return SweepSpec(
            workflows=(workflow,), continuum=continuum,
            schedulers=("heft", "round_robin"), mtbfs=(None, 50.0),
            jitters=(0.0, 0.1), policies=("restart",),
            replications=20, seed=7, chunk_size=7,
        )

    def test_parallel_bit_identical_to_serial(self, spec):
        serial = run_sweep(spec, workers=0)
        parallel = run_sweep(spec, workers=2)
        assert serial.to_dict()["cells"] == parallel.to_dict()["cells"]

    def test_chunking_never_changes_results(self, spec):
        rechunked = SweepSpec(
            workflows=spec.workflows, continuum=spec.continuum,
            schedulers=spec.schedulers, mtbfs=spec.mtbfs,
            jitters=spec.jitters, policies=spec.policies,
            replications=spec.replications, seed=spec.seed, chunk_size=3,
        )
        assert (
            run_sweep(spec).to_dict()["cells"]
            == run_sweep(rechunked).to_dict()["cells"]
        )

    def test_cell_streams_do_not_depend_on_grid_shape(
        self, workflow, continuum, spec
    ):
        """A cell's statistics are content-addressed: the same cell inside
        a smaller grid produces bit-identical numbers."""
        small = SweepSpec(
            workflows=(workflow,), continuum=continuum,
            schedulers=("heft",), mtbfs=(50.0,), jitters=(0.0,),
            policies=("restart",), replications=20, seed=7,
        )
        full = {c.cell.cell_id: c for c in run_sweep(spec).cells}
        for stats in run_sweep(small).cells:
            assert stats.to_dict() == full[stats.cell.cell_id].to_dict()

    def test_seed_changes_results(self, spec, workflow, continuum):
        reseeded = SweepSpec(
            workflows=spec.workflows, continuum=spec.continuum,
            schedulers=spec.schedulers, mtbfs=spec.mtbfs,
            jitters=spec.jitters, policies=spec.policies,
            replications=spec.replications, seed=8,
        )
        a = run_sweep(spec).cells
        b = run_sweep(reseeded).cells
        noisy = [c.cell_id for c in spec.cells() if c.mtbf or c.jitter]
        assert any(
            x.metrics["makespan"].mean != y.metrics["makespan"].mean
            for x, y in zip(a, b)
            if x.cell.cell_id in noisy
        )

    def test_replication_workers_invalid(self, spec):
        with pytest.raises(MonteCarloError):
            run_sweep(spec, workers=-1)


class TestSweepAggregation:
    def test_summaries_match_naive_replications(self, workflow, continuum):
        """The streamed Welford aggregate equals numpy over the raw
        per-replication values recomputed via the one-shot simulator."""
        from repro.continuum.montecarlo import (
            _cell_entropy,
            _cell_identity,
            _continuum_fingerprint,
            _replication_rng,
            _workflow_fingerprint,
        )

        spec = SweepSpec(
            workflows=(workflow,), continuum=continuum,
            schedulers=("heft",), mtbfs=(40.0,), policies=("restart",),
            replications=60, seed=3,
        )
        result = run_sweep(spec)
        stats = result.cells[0]

        schedule = HeftScheduler().schedule(workflow, continuum)
        cell = spec.cells()[0]
        entropy = _cell_entropy(_cell_identity(
            spec, cell,
            {workflow.name: _workflow_fingerprint(workflow)},
            _continuum_fingerprint(continuum),
        ))
        makespans = []
        retries = []
        for rep in range(spec.replications):
            trace = simulate_with_failures(
                schedule, mtbf=40.0, repair_time=spec.repair_time,
                policy="restart", rng=_replication_rng(entropy, rep),
            )
            makespans.append(trace.makespan)
            retries.append(trace.n_failures)
        summary = stats.metrics["makespan"]
        assert summary.count == 60
        assert summary.mean == pytest.approx(np.mean(makespans), rel=1e-12)
        assert summary.std == pytest.approx(
            np.std(makespans, ddof=1), rel=1e-9
        )
        assert summary.min == min(makespans)
        assert summary.max == max(makespans)
        assert stats.metrics["retries"].mean == pytest.approx(
            np.mean(retries), rel=1e-12
        )

    def test_prefix_stability_in_replications(self, workflow, continuum):
        """The first R replications of a larger run are the same draws —
        min/max over a prefix are bounded by the superset's."""
        base = dict(
            workflows=(workflow,), continuum=continuum,
            schedulers=("heft",), mtbfs=(40.0,), seed=3,
        )
        small = run_sweep(SweepSpec(replications=20, **base)).cells[0]
        big = run_sweep(SweepSpec(replications=40, **base)).cells[0]
        assert small.metrics["makespan"].min >= big.metrics["makespan"].min
        assert small.metrics["makespan"].max <= big.metrics["makespan"].max

    def test_cellstats_round_trips(self, workflow, continuum):
        spec = SweepSpec(
            workflows=(workflow,), continuum=continuum,
            mtbfs=(50.0,), replications=10, seed=1,
        )
        stats = run_sweep(spec).cells[0]
        assert CellStats.from_dict(stats.to_dict()) == stats


class TestSweepCache:
    def test_warm_cache_runs_zero_simulations(self, workflow, continuum):
        spec = SweepSpec(
            workflows=(workflow,), continuum=continuum,
            schedulers=("heft", "round_robin"), mtbfs=(None, 50.0),
            replications=15, seed=2,
        )
        cache = ArtifactCache()
        cold = run_sweep(spec, cache=cache)
        assert cold.n_replications_run == 4 * 15
        assert len(cold.computed) == 4 and not cold.cached
        warm = run_sweep(spec, cache=cache)
        assert warm.n_replications_run == 0
        assert len(warm.cached) == 4 and not warm.computed
        assert warm.to_dict()["cells"] == cold.to_dict()["cells"]

    def test_on_disk_cache_survives_processes(self, workflow, continuum,
                                              tmp_path):
        spec = SweepSpec(
            workflows=(workflow,), continuum=continuum,
            mtbfs=(50.0,), replications=10, seed=4,
        )
        cold = run_sweep(spec, cache=ArtifactCache(tmp_path))
        warm = run_sweep(spec, cache=ArtifactCache(tmp_path))
        assert warm.n_replications_run == 0
        assert warm.to_dict()["cells"] == cold.to_dict()["cells"]

    def test_changed_spec_misses(self, workflow, continuum):
        cache = ArtifactCache()
        base = dict(
            workflows=(workflow,), continuum=continuum,
            mtbfs=(50.0,), replications=10,
        )
        run_sweep(SweepSpec(seed=1, **base), cache=cache)
        reseeded = run_sweep(SweepSpec(seed=2, **base), cache=cache)
        assert reseeded.n_replications_run == 10
        grown = run_sweep(
            SweepSpec(seed=1, **{**base, "replications": 11}), cache=cache
        )
        assert grown.n_replications_run == 11


class TestSweepIntegration:
    def test_telemetry_counters_and_span(self, workflow, continuum):
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        spec = SweepSpec(
            workflows=(workflow,), continuum=continuum,
            mtbfs=(50.0,), replications=12, seed=0,
        )
        run_sweep(spec, cache=ArtifactCache(), telemetry=telemetry)
        snapshot = telemetry.metrics.snapshot()
        assert snapshot["mc.replications"]["value"] == 12
        assert snapshot["mc.cells_computed"]["value"] == 1
        names = {span.name for span in telemetry.tracer.spans()}
        assert "sweep" in names
        assert "schedule.heft" in names

    def test_registry_records_sweep(self, workflow, continuum, tmp_path):
        from repro.obs import RunRegistry

        registry = RunRegistry(tmp_path)
        spec = SweepSpec(
            workflows=(workflow,), continuum=continuum,
            mtbfs=(50.0,), replications=8, seed=0,
        )
        run_sweep(spec, registry=registry)
        record = registry.last(1)[0]
        assert record.kind == "mc-sweep"
        assert record.metrics["mc.replications"] == 8.0
        assert record.artifacts["cells"].n_items == 1
        assert record.config_digest

    def test_sweep_record_artifact_digest_is_deterministic(
        self, workflow, continuum, tmp_path
    ):
        from repro.obs import RunRegistry

        registry = RunRegistry(tmp_path)
        spec = SweepSpec(
            workflows=(workflow,), continuum=continuum,
            mtbfs=(50.0,), replications=8, seed=0,
        )
        run_sweep(spec, registry=registry)
        run_sweep(spec, registry=registry)
        first, second = registry.last(2)
        assert (
            first.artifacts["cells"].sha256
            == second.artifacts["cells"].sha256
        )


class TestContinuumSerialization:
    def test_round_trip(self, continuum):
        clone = continuum_from_dict(continuum_to_dict(continuum))
        assert clone.keys == continuum.keys
        assert np.array_equal(clone.bandwidth, continuum.bandwidth)
        assert np.array_equal(clone.latency, continuum.latency)
        for key in continuum.keys:
            assert clone[key] == continuum[key]

    def test_dict_is_strict_json(self, continuum):
        import json

        payload = json.dumps(continuum_to_dict(continuum), allow_nan=False)
        assert continuum_from_dict(json.loads(payload)).keys == continuum.keys

    def test_version_and_malformed_rejected(self, continuum):
        from repro.errors import SerializationError

        with pytest.raises(SerializationError):
            continuum_from_dict({"format_version": 99})
        bad = continuum_to_dict(continuum)
        del bad["resources"]
        with pytest.raises(SerializationError):
            continuum_from_dict(bad)
