"""Unit tests for table rendering and the Table 1/2 generators."""

import pytest

from repro.errors import RenderError
from repro.tables.render import TextTable
from repro.tables.table1 import build_table1, table1_columns
from repro.tables.table2 import build_table2


class TestTextTable:
    def test_row_length_enforced(self):
        table = TextTable(["a", "b"])
        with pytest.raises(RenderError):
            table.add_row(["only-one"])

    def test_needs_columns(self):
        with pytest.raises(RenderError):
            TextTable([])

    def test_to_text_aligned(self):
        table = TextTable(["name", "n"], [["alpha", "1"], ["b", "22"]])
        lines = table.to_text().splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_to_markdown(self):
        table = TextTable(["a|x", "b"], [["1", "2"]], caption="Cap")
        md = table.to_markdown()
        assert "**Cap**" in md
        assert "a\\|x" in md
        assert "| 1 | 2 |" in md

    def test_to_latex_escapes(self):
        table = TextTable(["A & B"], [["50%"]], caption="C_1")
        tex = table.to_latex()
        assert r"A \& B" in tex
        assert r"50\%" in tex
        assert r"\caption{C\_1}" in tex
        assert r"\begin{table}" in tex

    def test_to_latex_no_caption_is_bare_tabular(self):
        tex = TextTable(["a"], [["x"]]).to_latex()
        assert r"\begin{table}" not in tex
        assert r"\begin{tabular}{l}" in tex

    def test_column_access(self):
        table = TextTable(["a", "b"], [["1", "2"], ["3", "4"]])
        assert table.column(1) == ("2", "4")
        with pytest.raises(RenderError):
            table.column(5)


class TestTable1:
    def test_columns_match_published(self, tools, scheme):
        columns = table1_columns(tools, scheme)
        assert columns["energy-efficiency"] == (
            "PESOS", "Lapegna et al.", "De Lucia et al.",
        )

    def test_structure(self, tools, scheme):
        table = build_table1(tools, scheme)
        assert table.header == scheme.names
        assert len(table.rows) == 7  # orchestration is the deepest column
        # First row is the first tool of each direction.
        assert table.rows[0] == (
            "BookedSlurm", "TORCH", "PESOS", "FastFlow", "ParSoDA",
        )
        # Short columns padded with blanks.
        assert table.rows[6] == ("", "MoveQUIC", "", "", "")

    def test_renders_everywhere(self, tools, scheme):
        table = build_table1(tools, scheme)
        assert "BookedSlurm" in table.to_text()
        assert "BookedSlurm" in table.to_markdown()
        assert "BookedSlurm" in table.to_latex()


class TestTable2:
    def test_checkmark_count(self, tools, applications, scheme):
        table = build_table2(tools, applications, scheme)
        body = "\n".join("".join(row) for row in table.rows)
        assert body.count("✓") == 28

    def test_header_sections(self, tools, applications, scheme):
        table = build_table2(tools, applications, scheme)
        assert table.header[2:] == tuple(
            a.section for a in applications.ordered()
        )

    def test_direction_label_only_on_first_row(self, tools, applications, scheme):
        table = build_table2(tools, applications, scheme)
        direction_cells = table.column(0)
        non_empty = [c for c in direction_cells if c]
        assert non_empty == [
            "Interactive computing", "Orchestration", "Energy efficiency",
            "Performance portability", "Big Data management",
        ]

    def test_streamflow_row(self, tools, applications, scheme):
        table = build_table2(tools, applications, scheme)
        row = next(r for r in table.rows if r[1] == "StreamFlow")
        checked_sections = [
            table.header[i] for i, cell in enumerate(row) if cell == "✓"
        ]
        assert checked_sections == ["3.2", "3.3", "3.10"]
