"""Unit tests for catalogues and ecosystem validation."""

import pytest

from repro.core.catalog import (
    ApplicationCatalog,
    InstitutionRegistry,
    ToolCatalog,
    validate_ecosystem,
)
from repro.core.entities import Application, Institution, InstitutionKind, Tool
from repro.core.taxonomy import workflow_directions
from repro.errors import (
    DuplicateEntityError,
    UnknownCategoryError,
    UnknownEntityError,
    ValidationError,
)


def _tool(key="t1", institution="inst", direction="orchestration"):
    return Tool(key, key.upper(), institution, direction)


class TestCatalogBasics:
    def test_duplicate_rejected(self):
        catalog = ToolCatalog([_tool()])
        with pytest.raises(DuplicateEntityError):
            catalog.add(_tool())

    def test_unknown_lookup(self):
        catalog = ToolCatalog([_tool()])
        with pytest.raises(UnknownEntityError):
            catalog["nope"]

    def test_get_with_default(self):
        catalog = ToolCatalog([_tool()])
        assert catalog.get("nope") is None
        assert catalog.get("t1").key == "t1"

    def test_iteration_order(self):
        catalog = ToolCatalog([_tool("b"), _tool("a")])
        assert [t.key for t in catalog] == ["b", "a"]
        assert catalog.keys == ("b", "a")

    def test_filter(self):
        catalog = ToolCatalog([_tool("a"), _tool("b", direction="energy-efficiency")])
        assert [t.key for t in catalog.filter(
            lambda t: t.primary_direction == "energy-efficiency")] == ["b"]


class TestToolCatalogQueries:
    def test_by_direction_primary_only(self, tools):
        orch = tools.by_direction("orchestration")
        assert [t.name for t in orch] == [
            "TORCH", "INDIGO", "Liqo", "StreamFlow", "SPF", "BDMaaS+", "MoveQUIC",
        ]

    def test_by_direction_including_secondary(self, tools):
        with_secondary = tools.by_direction("orchestration", include_secondary=True)
        names = {t.name for t in with_secondary}
        assert "Jupyter Workflow" in names  # secondary orchestration

    def test_by_institution(self, tools):
        unipi = tools.by_institution("unipi")
        assert len(unipi) == 7

    def test_institutions_distinct(self, tools):
        assert len(tools.institutions()) == 9

    def test_direction_counts_rejects_foreign_direction(self):
        scheme = workflow_directions()
        catalog = ToolCatalog([Tool("t", "T", "inst", "other-direction")])
        with pytest.raises(UnknownEntityError):
            catalog.direction_counts(scheme)

    def test_institution_coverage(self, tools):
        coverage = tools.institution_coverage()
        assert coverage["cineca"] == frozenset({"interactive-computing"})
        assert len(coverage["unipi"]) == 4


class TestApplicationCatalogQueries:
    def test_ordered_by_section(self):
        catalog = ApplicationCatalog(
            [
                Application("b", "B", "3.10"),
                Application("a", "A", "3.2"),
            ]
        )
        assert [a.key for a in catalog.ordered()] == ["a", "b"]

    def test_by_provider(self, applications):
        assert {a.key for a in applications.by_provider("unipi")} == {
            "software-heritage-compression", "worlddynamics",
        }

    def test_providers_count(self, applications):
        assert len(applications.providers()) == 11

    def test_selecting(self, applications):
        apps = applications.selecting("streamflow")
        assert {a.section for a in apps} == {"3.2", "3.3", "3.10"}


class TestValidateEcosystem:
    def _minimal(self):
        institutions = InstitutionRegistry([Institution("inst", "Inst")])
        tools = ToolCatalog([_tool()])
        applications = ApplicationCatalog(
            [Application("a", "A", "3.1", providers=("inst",),
                         selected_tools=("t1",))]
        )
        return institutions, tools, applications, workflow_directions()

    def test_valid_passes(self):
        validate_ecosystem(*self._minimal())

    def test_unknown_tool_institution(self):
        institutions, tools, applications, scheme = self._minimal()
        tools.add(_tool("t2", institution="ghost"))
        with pytest.raises(UnknownEntityError):
            validate_ecosystem(institutions, tools, applications, scheme)

    def test_unknown_direction(self):
        institutions, tools, applications, scheme = self._minimal()
        tools.add(Tool("t3", "T3", "inst", "no-such-direction"))
        with pytest.raises(UnknownCategoryError):
            validate_ecosystem(institutions, tools, applications, scheme)

    def test_unknown_selected_tool(self):
        institutions, tools, applications, scheme = self._minimal()
        applications.add(
            Application("b", "B", "3.2", providers=("inst",),
                        selected_tools=("ghost-tool",))
        )
        with pytest.raises(UnknownEntityError):
            validate_ecosystem(institutions, tools, applications, scheme)

    def test_unknown_provider(self):
        institutions, tools, applications, scheme = self._minimal()
        applications.add(Application("b", "B", "3.2", providers=("ghost",)))
        with pytest.raises(UnknownEntityError):
            validate_ecosystem(institutions, tools, applications, scheme)

    def test_empty_catalogue_rejected(self):
        institutions, tools, applications, scheme = self._minimal()
        with pytest.raises(ValidationError):
            validate_ecosystem(
                institutions, ToolCatalog(), applications, scheme
            )

    def test_institution_registry_by_kind(self):
        registry = InstitutionRegistry(
            [
                Institution("u", "U", kind=InstitutionKind.UNIVERSITY),
                Institution("c", "C", kind=InstitutionKind.COMPUTING_CENTRE),
            ]
        )
        assert [i.key for i in registry.by_kind(InstitutionKind.COMPUTING_CENTRE)] == ["c"]
