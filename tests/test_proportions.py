"""Unit tests for proportion intervals and comparisons."""

import pytest

from repro.errors import StatsError
from repro.stats.frequency import FrequencyTable
from repro.stats.proportions import (
    jeffreys_interval,
    share_table,
    two_proportion_test,
    wilson_interval,
)


class TestWilson:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(11, 28)
        assert low < 11 / 28 < high

    def test_bounded(self):
        low, high = wilson_interval(0, 10)
        assert low == 0.0 and 0 < high < 1
        low, high = wilson_interval(10, 10)
        assert 0 < low < 1 and high == 1.0

    def test_narrower_with_more_trials(self):
        small = wilson_interval(11, 28)
        large = wilson_interval(110, 280)
        assert (large[1] - large[0]) < (small[1] - small[0])

    def test_higher_confidence_wider(self):
        narrow = wilson_interval(7, 25, confidence=0.90)
        wide = wilson_interval(7, 25, confidence=0.99)
        assert (wide[1] - wide[0]) > (narrow[1] - narrow[0])

    def test_known_value(self):
        # Canonical check: Wilson 95% for 5/10 is (0.2366, 0.7634).
        low, high = wilson_interval(5, 10)
        assert low == pytest.approx(0.2366, abs=1e-3)
        assert high == pytest.approx(0.7634, abs=1e-3)

    def test_validation(self):
        with pytest.raises(StatsError):
            wilson_interval(5, 0)
        with pytest.raises(StatsError):
            wilson_interval(-1, 10)
        with pytest.raises(StatsError):
            wilson_interval(11, 10)
        with pytest.raises(StatsError):
            wilson_interval(5, 10, confidence=1.0)


class TestJeffreys:
    def test_contains_point_estimate(self):
        low, high = jeffreys_interval(11, 28)
        assert low < 11 / 28 < high

    def test_boundary_conventions(self):
        low, _ = jeffreys_interval(0, 10)
        _, high = jeffreys_interval(10, 10)
        assert low == 0.0
        assert high == 1.0

    def test_similar_to_wilson_midrange(self):
        wilson = wilson_interval(14, 28)
        jeffreys = jeffreys_interval(14, 28)
        assert wilson[0] == pytest.approx(jeffreys[0], abs=0.03)
        assert wilson[1] == pytest.approx(jeffreys[1], abs=0.03)


class TestTwoProportion:
    def test_supply_vs_demand_not_significant(self):
        # Orchestration: 7/25 supply vs 11/28 demand (paper data).
        result = two_proportion_test(7, 25, 11, 28)
        assert not result.significant()
        assert result.method == "two-proportion z"

    def test_large_difference_significant(self):
        result = two_proportion_test(90, 100, 10, 100)
        assert result.significant(0.001)

    def test_identical_proportions(self):
        result = two_proportion_test(5, 10, 50, 100)
        assert result.statistic == pytest.approx(0.0)
        assert result.p_value == pytest.approx(1.0)

    def test_degenerate_pool(self):
        result = two_proportion_test(0, 10, 0, 20)
        assert result.p_value == 1.0

    def test_symmetry(self):
        a = two_proportion_test(7, 25, 11, 28)
        b = two_proportion_test(11, 28, 7, 25)
        assert a.p_value == pytest.approx(b.p_value)
        assert a.statistic == pytest.approx(-b.statistic)


class TestShareTable:
    def test_fig4_shares(self, selection, tools, scheme):
        votes = selection.votes_per_direction(tools, scheme)
        table = share_table(votes)
        share, low, high = table["orchestration"]
        assert share == pytest.approx(11 / 28)
        assert low < share < high
        # Energy efficiency's interval stays clearly below orchestration's.
        assert table["energy-efficiency"][2] < low

    def test_all_zero_rejected(self):
        with pytest.raises(StatsError):
            share_table(FrequencyTable({"a": 0}))
