"""Unit tests for frequency tables and crosstabs."""

import numpy as np
import pytest

from repro.errors import StatsError
from repro.stats.frequency import FrequencyTable, crosstab


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(StatsError):
            FrequencyTable({})

    def test_negative_rejected(self):
        with pytest.raises(StatsError):
            FrequencyTable({"a": -1})

    def test_order_preserved(self):
        table = FrequencyTable({"z": 1, "a": 2})
        assert table.labels == ("z", "a")

    def test_values_readonly(self):
        table = FrequencyTable({"a": 1})
        with pytest.raises(ValueError):
            table.values[0] = 5

    def test_from_observations(self):
        table = FrequencyTable.from_observations(["a", "b", "a"])
        assert table.to_dict() == {"a": 2, "b": 1}

    def test_from_observations_with_order(self):
        table = FrequencyTable.from_observations(
            ["b"], order=["a", "b", "c"]
        )
        assert table.to_dict() == {"a": 0, "b": 1, "c": 0}

    def test_from_observations_outside_order(self):
        with pytest.raises(StatsError):
            FrequencyTable.from_observations(["x"], order=["a"])

    def test_from_observations_empty_no_order(self):
        with pytest.raises(StatsError):
            FrequencyTable.from_observations([])


class TestAccessors:
    @pytest.fixture
    def table(self):
        return FrequencyTable({"a": 3, "b": 7, "c": 0})

    def test_getitem(self, table):
        assert table["b"] == 7
        with pytest.raises(StatsError):
            table["nope"]

    def test_total_len_contains(self, table):
        assert table.total == 10
        assert len(table) == 3
        assert "a" in table and "nope" not in table

    def test_shares(self, table):
        np.testing.assert_allclose(table.shares(), [0.3, 0.7, 0.0])
        assert table.share("b") == pytest.approx(0.7)

    def test_shares_all_zero_rejected(self):
        with pytest.raises(StatsError):
            FrequencyTable({"a": 0}).shares()

    def test_percentages(self, table):
        assert table.percentages() == {"a": 30.0, "b": 70.0, "c": 0.0}

    def test_ranked(self, table):
        assert table.ranked() == [("b", 7), ("a", 3), ("c", 0)]
        assert table.ranked(descending=False)[0] == ("c", 0)

    def test_mode_argmin(self, table):
        assert table.mode() == "b"
        assert table.argmin() == "c"

    def test_ties_are_stable(self):
        table = FrequencyTable({"x": 2, "y": 2})
        assert table.mode() == "x"  # first in table order wins

    def test_nonzero(self, table):
        assert table.nonzero().labels == ("a", "b")

    def test_nonzero_all_zero(self):
        with pytest.raises(StatsError):
            FrequencyTable({"a": 0}).nonzero()

    def test_merge(self, table):
        merged = table.merge(FrequencyTable({"b": 1, "d": 4}))
        assert merged.to_dict() == {"a": 3, "b": 8, "c": 0, "d": 4}

    def test_equality_and_hash(self):
        a = FrequencyTable({"x": 1, "y": 2})
        b = FrequencyTable({"x": 1, "y": 2})
        c = FrequencyTable({"y": 2, "x": 1})  # different order
        assert a == b
        assert hash(a) == hash(b)
        assert a != c


class TestCrosstab:
    def test_basic(self):
        matrix, rows, cols = crosstab(
            ["u", "u", "v"], ["x", "y", "x"]
        )
        assert rows == ("u", "v")
        assert cols == ("x", "y")
        np.testing.assert_array_equal(matrix, [[1, 1], [1, 0]])

    def test_fixed_order(self):
        matrix, rows, cols = crosstab(
            ["u"], ["x"], row_order=["v", "u"], col_order=["y", "x"]
        )
        assert rows == ("v", "u")
        np.testing.assert_array_equal(matrix, [[0, 0], [0, 1]])

    def test_length_mismatch(self):
        with pytest.raises(StatsError):
            crosstab(["a"], [])

    def test_observation_outside_order(self):
        with pytest.raises(StatsError):
            crosstab(["a"], ["x"], row_order=["b"])

    def test_empty_needs_orders(self):
        with pytest.raises(StatsError):
            crosstab([], [])
        matrix, rows, cols = crosstab([], [], row_order=["a"], col_order=["b"])
        assert matrix.shape == (1, 1)
        assert matrix.sum() == 0
