"""Unit tests for failure injection."""

import pytest

from repro.continuum.failures import simulate_with_failures
from repro.continuum.resources import default_continuum
from repro.continuum.scheduling import HeftScheduler
from repro.continuum.workflow import random_workflow
from repro.errors import ContinuumError


@pytest.fixture(scope="module")
def schedule():
    wf = random_workflow(50, seed=4)
    continuum = default_continuum(seed=4)
    return HeftScheduler().schedule(wf, continuum)


class TestFailureFreeLimit:
    def test_huge_mtbf_reproduces_plan(self, schedule):
        trace = simulate_with_failures(
            schedule, mtbf=1e9, repair_time=1.0, seed=0
        )
        assert trace.n_failures == 0
        assert trace.n_migrations == 0
        assert trace.lost_work == 0.0
        assert trace.makespan == pytest.approx(schedule.makespan, rel=1e-6)


class TestUnderFailures:
    @pytest.mark.parametrize("policy", ["restart", "migrate"])
    def test_all_tasks_complete(self, schedule, policy):
        trace = simulate_with_failures(
            schedule, mtbf=2.0, repair_time=0.5, policy=policy, seed=7
        )
        assert len(trace.placements) == len(schedule.workflow)
        assert trace.n_failures > 0
        assert trace.slowdown > 1.0
        assert trace.lost_work > 0.0

    @pytest.mark.parametrize("policy", ["restart", "migrate"])
    def test_dependencies_respected(self, schedule, policy):
        trace = simulate_with_failures(
            schedule, mtbf=2.0, repair_time=0.5, policy=policy, seed=3
        )
        start = {p.task: p.start for p in trace.placements}
        finish = {p.task: p.finish for p in trace.placements}
        for src, dst in schedule.workflow.edges:
            assert start[dst] >= finish[src] - 1e-9

    @pytest.mark.parametrize("policy", ["restart", "migrate"])
    def test_no_resource_overlap(self, schedule, policy):
        trace = simulate_with_failures(
            schedule, mtbf=1.5, repair_time=0.2, policy=policy, seed=5
        )
        by_resource: dict[str, list] = {}
        for p in trace.placements:
            by_resource.setdefault(p.resource, []).append(p)
        for slots in by_resource.values():
            slots.sort(key=lambda p: p.start)
            for a, b in zip(slots, slots[1:]):
                assert b.start >= a.finish - 1e-9

    def test_restart_never_migrates(self, schedule):
        trace = simulate_with_failures(
            schedule, mtbf=2.0, repair_time=0.5, policy="restart", seed=7
        )
        assert trace.n_migrations == 0

    def test_migration_beats_restart_when_communication_is_light(self):
        # Decisions diverge after the first failure, so the comparison is
        # statistical over seeds.  Migration only pays when the migrated
        # task's data gravity is small — with heavy outputs the inter-tier
        # transfers eat the gain — so the claim is made on a
        # communication-light workload.
        import numpy as np

        wf = random_workflow(50, seed=4, output_range=(0.0, 0.1))
        schedule = HeftScheduler().schedule(wf, default_continuum(seed=4))
        restarts, migrates = [], []
        for seed in range(15):
            restarts.append(
                simulate_with_failures(
                    schedule, mtbf=2.0, repair_time=2.0,
                    policy="restart", seed=seed,
                ).makespan
            )
            migrates.append(
                simulate_with_failures(
                    schedule, mtbf=2.0, repair_time=2.0,
                    policy="migrate", seed=seed,
                ).makespan
            )
        assert np.mean(migrates) < np.mean(restarts)

    def test_deterministic_under_seed(self, schedule):
        a = simulate_with_failures(schedule, mtbf=2.0, repair_time=0.5, seed=9)
        b = simulate_with_failures(schedule, mtbf=2.0, repair_time=0.5, seed=9)
        assert a.makespan == b.makespan
        assert a.n_failures == b.n_failures


class TestValidation:
    def test_bad_parameters(self, schedule):
        with pytest.raises(ContinuumError):
            simulate_with_failures(schedule, mtbf=0.0, repair_time=1.0)
        with pytest.raises(ContinuumError):
            simulate_with_failures(schedule, mtbf=1.0, repair_time=-1.0)
        with pytest.raises(ContinuumError):
            simulate_with_failures(schedule, mtbf=1.0, repair_time=0.0,
                                   policy="pray")
        with pytest.raises(ContinuumError):
            simulate_with_failures(schedule, mtbf=1.0, repair_time=0.0,
                                   max_attempts=0)

    def test_pathological_mtbf_aborts(self, schedule):
        # MTBF far below task durations: restarts can never finish.
        with pytest.raises(ContinuumError):
            simulate_with_failures(
                schedule, mtbf=1e-6, repair_time=0.0,
                policy="restart", seed=1, max_attempts=10,
            )
