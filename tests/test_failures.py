"""Unit tests for failure injection."""

import numpy as np
import pytest

from repro.continuum.failures import _FailureClock, simulate_with_failures
from repro.continuum.resources import default_continuum
from repro.continuum.scheduling import HeftScheduler
from repro.continuum.workflow import layered_workflow, random_workflow
from repro.errors import ContinuumError


@pytest.fixture(scope="module")
def schedule():
    wf = random_workflow(50, seed=4)
    continuum = default_continuum(seed=4)
    return HeftScheduler().schedule(wf, continuum)


class TestFailureFreeLimit:
    def test_huge_mtbf_reproduces_plan(self, schedule):
        trace = simulate_with_failures(
            schedule, mtbf=1e9, repair_time=1.0, seed=0
        )
        assert trace.n_failures == 0
        assert trace.n_migrations == 0
        assert trace.lost_work == 0.0
        assert trace.makespan == pytest.approx(schedule.makespan, rel=1e-6)


class TestUnderFailures:
    @pytest.mark.parametrize("policy", ["restart", "migrate"])
    def test_all_tasks_complete(self, schedule, policy):
        trace = simulate_with_failures(
            schedule, mtbf=2.0, repair_time=0.5, policy=policy, seed=7
        )
        assert len(trace.placements) == len(schedule.workflow)
        assert trace.n_failures > 0
        assert trace.slowdown > 1.0
        assert trace.lost_work > 0.0

    @pytest.mark.parametrize("policy", ["restart", "migrate"])
    def test_dependencies_respected(self, schedule, policy):
        trace = simulate_with_failures(
            schedule, mtbf=2.0, repair_time=0.5, policy=policy, seed=3
        )
        start = {p.task: p.start for p in trace.placements}
        finish = {p.task: p.finish for p in trace.placements}
        for src, dst in schedule.workflow.edges:
            assert start[dst] >= finish[src] - 1e-9

    @pytest.mark.parametrize("policy", ["restart", "migrate"])
    def test_no_resource_overlap(self, schedule, policy):
        trace = simulate_with_failures(
            schedule, mtbf=1.5, repair_time=0.2, policy=policy, seed=5
        )
        by_resource: dict[str, list] = {}
        for p in trace.placements:
            by_resource.setdefault(p.resource, []).append(p)
        for slots in by_resource.values():
            slots.sort(key=lambda p: p.start)
            for a, b in zip(slots, slots[1:]):
                assert b.start >= a.finish - 1e-9

    def test_restart_never_migrates(self, schedule):
        trace = simulate_with_failures(
            schedule, mtbf=2.0, repair_time=0.5, policy="restart", seed=7
        )
        assert trace.n_migrations == 0

    def test_migration_beats_restart_when_communication_is_light(self):
        # Decisions diverge after the first failure, so the comparison is
        # statistical over seeds.  Migration only pays when the migrated
        # task's data gravity is small — with heavy outputs the inter-tier
        # transfers eat the gain — so the claim is made on a
        # communication-light workload.
        import numpy as np

        wf = random_workflow(50, seed=4, output_range=(0.0, 0.1))
        schedule = HeftScheduler().schedule(wf, default_continuum(seed=4))
        restarts, migrates = [], []
        for seed in range(15):
            restarts.append(
                simulate_with_failures(
                    schedule, mtbf=2.0, repair_time=2.0,
                    policy="restart", seed=seed,
                ).makespan
            )
            migrates.append(
                simulate_with_failures(
                    schedule, mtbf=2.0, repair_time=2.0,
                    policy="migrate", seed=seed,
                ).makespan
            )
        assert np.mean(migrates) < np.mean(restarts)

    def test_deterministic_under_seed(self, schedule):
        a = simulate_with_failures(schedule, mtbf=2.0, repair_time=0.5, seed=9)
        b = simulate_with_failures(schedule, mtbf=2.0, repair_time=0.5, seed=9)
        assert a.makespan == b.makespan
        assert a.n_failures == b.n_failures


class TestFailureClock:
    """The per-resource Poisson clock, especially idle-time semantics."""

    def test_initial_draws_are_per_resource_exponentials(self):
        rng = np.random.default_rng(0)
        clock = _FailureClock(("a", "b"), 10.0, rng)
        expected = np.random.default_rng(0).exponential(10.0, size=2)
        assert clock.next_failure("a") == expected[0]
        assert clock.next_failure("b") == expected[1]
        assert clock.consumed == 0

    def test_consume_advances_one_clock_only(self):
        clock = _FailureClock(("a", "b"), 10.0, np.random.default_rng(1))
        before_a = clock.next_failure("a")
        before_b = clock.next_failure("b")
        clock.consume("a")
        assert clock.next_failure("a") > before_a
        assert clock.next_failure("b") == before_b
        assert clock.consumed == 1

    def test_advance_past_skips_idle_failures(self):
        """Failures that elapsed while a resource sat idle are harmless
        reboots: they are consumed (counted) and never kill an attempt."""
        clock = _FailureClock(("a",), 5.0, np.random.default_rng(2))
        horizon = clock.next_failure("a") + 40.0
        clock.advance_past("a", horizon)
        assert clock.next_failure("a") >= horizon
        assert clock.consumed >= 1

    def test_advance_past_before_next_failure_is_a_no_op(self):
        clock = _FailureClock(("a",), 5.0, np.random.default_rng(3))
        pending = clock.next_failure("a")
        clock.advance_past("a", pending * 0.5)
        assert clock.next_failure("a") == pending
        assert clock.consumed == 0

    def test_advance_past_exact_boundary_keeps_failure_pending(self):
        """`advance_past` uses strict <: a failure at exactly the attempt
        start stays pending and can still kill the attempt."""
        clock = _FailureClock(("a",), 5.0, np.random.default_rng(4))
        pending = clock.next_failure("a")
        clock.advance_past("a", pending)
        assert clock.next_failure("a") == pending
        assert clock.consumed == 0

    def test_idle_failures_do_not_inflate_retry_count(self):
        """A single short task on a schedule with long idle gaps: idle
        failures fire (consumed), but n_failures counts only killed
        attempts."""
        wf = layered_workflow(2, 1, work=1.0, output_size=0.0)
        continuum = default_continuum(n_hpc=1, n_cloud=0, n_edge=0, seed=0)
        schedule = HeftScheduler().schedule(wf, continuum)
        trace = simulate_with_failures(
            schedule, mtbf=1e9, repair_time=0.0, seed=0
        )
        assert trace.n_failures == 0


class TestNearZeroMtbf:
    """Retry/migration paths under an MTBF close to task durations."""

    @pytest.fixture(scope="class")
    def light_schedule(self):
        # Homogeneous fast nodes keep every task duration well under 2×
        # the MTBF below: failures are frequent but each retry keeps a
        # fair success chance, so the replay terminates inside
        # max_attempts.
        wf = random_workflow(30, seed=8, output_range=(0.0, 0.05))
        continuum = default_continuum(n_hpc=3, n_cloud=0, n_edge=0, seed=8)
        return HeftScheduler().schedule(wf, continuum)

    def test_restart_retries_until_success(self, light_schedule):
        trace = simulate_with_failures(
            light_schedule, mtbf=0.05, repair_time=0.01,
            policy="restart", seed=2, max_attempts=500,
        )
        assert trace.n_failures > len(light_schedule.workflow)
        assert trace.n_migrations == 0
        assert trace.lost_work > 0.0
        assert trace.slowdown > 1.0
        assert len(trace.placements) == len(light_schedule.workflow)

    def test_migrate_actually_migrates(self, light_schedule):
        trace = simulate_with_failures(
            light_schedule, mtbf=0.05, repair_time=5.0,
            policy="migrate", seed=2, max_attempts=500,
        )
        assert trace.n_failures > 0
        assert trace.n_migrations > 0
        assert len(trace.placements) == len(light_schedule.workflow)

    def test_migrated_placements_are_feasible(self):
        wf = random_workflow(30, seed=8, output_range=(0.0, 0.05))
        # Pin a requirement so only HPC nodes are feasible; migration
        # must never place the task outside the feasible set.
        from repro.continuum.workflow import Task, Workflow

        pinned = Workflow(
            "pinned",
            [
                Task(t.key, t.work, t.output_size, frozenset({"gpu"}))
                for t in wf
            ],
            list(wf.edges),
        )
        continuum = default_continuum(seed=8)
        schedule = HeftScheduler().schedule(pinned, continuum)
        trace = simulate_with_failures(
            schedule, mtbf=0.5, repair_time=5.0,
            policy="migrate", seed=3, max_attempts=500,
        )
        gpu_nodes = {
            r.key for r in continuum if r.supports(frozenset({"gpu"}))
        }
        assert trace.n_failures > 0
        assert all(p.resource in gpu_nodes for p in trace.placements)

    def test_max_attempts_still_guards_migrate(self, light_schedule):
        with pytest.raises(ContinuumError):
            simulate_with_failures(
                light_schedule, mtbf=1e-6, repair_time=0.0,
                policy="migrate", seed=1, max_attempts=5,
            )


class TestRngParameter:
    def test_rng_equivalent_to_seed(self, schedule):
        by_seed = simulate_with_failures(
            schedule, mtbf=2.0, repair_time=0.5, seed=9
        )
        by_rng = simulate_with_failures(
            schedule, mtbf=2.0, repair_time=0.5,
            rng=np.random.default_rng(9),
        )
        assert by_rng.makespan == by_seed.makespan
        assert by_rng.n_failures == by_seed.n_failures
        assert by_rng.lost_work == by_seed.lost_work

    def test_seed_and_rng_mutually_exclusive(self, schedule):
        with pytest.raises(ContinuumError, match="not both"):
            simulate_with_failures(
                schedule, mtbf=2.0, repair_time=0.5,
                seed=0, rng=np.random.default_rng(0),
            )


class TestValidation:
    def test_bad_parameters(self, schedule):
        with pytest.raises(ContinuumError):
            simulate_with_failures(schedule, mtbf=0.0, repair_time=1.0)
        with pytest.raises(ContinuumError):
            simulate_with_failures(schedule, mtbf=1.0, repair_time=-1.0)
        with pytest.raises(ContinuumError):
            simulate_with_failures(schedule, mtbf=1.0, repair_time=0.0,
                                   policy="pray")
        with pytest.raises(ContinuumError):
            simulate_with_failures(schedule, mtbf=1.0, repair_time=0.0,
                                   max_attempts=0)

    def test_pathological_mtbf_aborts(self, schedule):
        # MTBF far below task durations: restarts can never finish.
        with pytest.raises(ContinuumError):
            simulate_with_failures(
                schedule, mtbf=1e-6, repair_time=0.0,
                policy="restart", seed=1, max_attempts=10,
            )
