"""Property-based tests for the text substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.similarity import jaccard, levenshtein, normalized_levenshtein
from repro.text.stem import porter_stem
from repro.text.tokenize import ngrams, tokenize

words = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=0, max_size=15)
short_strings = st.text(
    alphabet="abcdef ", min_size=0, max_size=20
)


class TestLevenshteinMetricAxioms:
    @given(short_strings)
    def test_identity(self, s):
        assert levenshtein(s, s) == 0

    @given(short_strings, short_strings)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(short_strings, short_strings)
    def test_positivity(self, a, b):
        d = levenshtein(a, b)
        assert d >= 0
        assert (d == 0) == (a == b)

    @given(short_strings, short_strings, short_strings)
    @settings(max_examples=60)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(short_strings, short_strings)
    def test_bounded_by_longer_length(self, a, b):
        assert levenshtein(a, b) <= max(len(a), len(b))

    @given(short_strings, short_strings)
    def test_at_least_length_difference(self, a, b):
        assert levenshtein(a, b) >= abs(len(a) - len(b))

    @given(short_strings, short_strings)
    def test_normalized_in_unit_interval(self, a, b):
        assert 0.0 <= normalized_levenshtein(a, b) <= 1.0


class TestJaccardProperties:
    @given(st.sets(st.integers(0, 20)), st.sets(st.integers(0, 20)))
    def test_bounds_and_identity(self, a, b):
        assert 0.0 <= jaccard(a, b) <= 1.0
        assert jaccard(a, a) == 1.0

    @given(st.sets(st.integers(0, 20)), st.sets(st.integers(0, 20)))
    def test_symmetry(self, a, b):
        assert jaccard(a, b) == jaccard(b, a)


class TestStemmerProperties:
    @given(words)
    def test_never_longer(self, word):
        assert len(porter_stem(word)) <= max(len(word), 1)

    @given(words)
    def test_deterministic(self, word):
        assert porter_stem(word) == porter_stem(word)

    @given(words)
    def test_output_stays_lowercase_alpha(self, word):
        stem = porter_stem(word)
        assert stem == "" or stem.isalpha() or stem == word

    @given(words.filter(lambda w: len(w) > 2))
    def test_nonempty_stays_nonempty(self, word):
        assert porter_stem(word)


class TestTokenizeProperties:
    @given(st.text(max_size=80))
    def test_tokens_lowercase(self, text):
        assert all(t == t.lower() for t in tokenize(text))

    @given(st.text(max_size=80))
    def test_no_empty_tokens(self, text):
        assert all(tokenize(text))

    @given(st.lists(words.filter(bool), max_size=10),
           st.integers(min_value=1, max_value=5))
    def test_ngram_count(self, tokens, n):
        grams = ngrams(tokens, n)
        assert len(grams) == max(0, len(tokens) - n + 1)
        assert all(len(g) == n for g in grams)
