"""Unit tests for diversity/concentration indices."""

import numpy as np
import pytest

from repro.errors import StatsError
from repro.stats.diversity import (
    evenness_report,
    gini_coefficient,
    herfindahl_index,
    shannon_entropy,
    shannon_evenness,
    simpson_index,
)
from repro.stats.frequency import FrequencyTable


class TestShannon:
    def test_uniform_maximizes_entropy(self):
        assert shannon_entropy([5, 5, 5, 5]) == pytest.approx(np.log(4))

    def test_degenerate_distribution_zero_entropy(self):
        assert shannon_entropy([10, 0, 0]) == pytest.approx(0.0)

    def test_base2(self):
        assert shannon_entropy([1, 1], base=2) == pytest.approx(1.0)

    def test_evenness_bounds(self):
        assert shannon_evenness([5, 5, 5]) == pytest.approx(1.0)
        assert shannon_evenness([100, 1, 1]) < 0.3

    def test_single_category_even_by_convention(self):
        assert shannon_evenness([7]) == 1.0

    def test_accepts_frequency_table(self):
        table = FrequencyTable({"a": 3, "b": 3})
        assert shannon_evenness(table) == pytest.approx(1.0)


class TestSimpsonHerfindahl:
    def test_simpson_uniform(self):
        assert simpson_index([1, 1, 1, 1]) == pytest.approx(0.75)

    def test_simpson_degenerate(self):
        assert simpson_index([9, 0]) == pytest.approx(0.0)

    def test_complementarity(self):
        counts = [3, 7, 3, 6, 6]
        assert simpson_index(counts) + herfindahl_index(counts) == pytest.approx(1.0)


class TestGini:
    def test_equal_counts_zero(self):
        assert gini_coefficient([4, 4, 4]) == pytest.approx(0.0)

    def test_concentrated(self):
        assert gini_coefficient([0, 0, 0, 100]) == pytest.approx(0.75)

    def test_single_category(self):
        assert gini_coefficient([5]) == 0.0

    def test_order_invariant(self):
        assert gini_coefficient([1, 5, 3]) == pytest.approx(
            gini_coefficient([5, 3, 1])
        )


class TestValidation:
    @pytest.mark.parametrize(
        "func",
        [shannon_entropy, shannon_evenness, simpson_index,
         gini_coefficient, herfindahl_index],
    )
    def test_rejects_bad_input(self, func):
        with pytest.raises(StatsError):
            func([])
        with pytest.raises(StatsError):
            func([-1, 2])
        with pytest.raises(StatsError):
            func([0, 0])


class TestReport:
    def test_keys_and_paper_orientation(self):
        supply = evenness_report([3, 7, 3, 6, 6])   # Fig. 2
        demand = evenness_report([4, 11, 1, 6, 6])  # Fig. 4
        assert set(supply) == {
            "shannon_entropy", "shannon_evenness", "simpson_index",
            "gini_coefficient", "herfindahl_index",
        }
        # The paper: supply "quite balanced", demand "much more unbalanced".
        assert supply["shannon_evenness"] > demand["shannon_evenness"]
        assert supply["gini_coefficient"] < demand["gini_coefficient"]
