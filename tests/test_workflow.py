"""Unit tests for the workflow DAG model."""

import pytest

from repro.continuum.workflow import (
    Task,
    Workflow,
    layered_workflow,
    random_workflow,
)
from repro.errors import ValidationError, WorkflowGraphError


def diamond():
    """a -> b, a -> c, b -> d, c -> d."""
    tasks = [Task(k, 10.0, output_size=1.0) for k in "abcd"]
    edges = [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
    return Workflow("diamond", tasks, edges)


class TestTask:
    def test_validation(self):
        with pytest.raises(ValidationError):
            Task("", 1.0)
        with pytest.raises(ValidationError):
            Task("t", 0.0)
        with pytest.raises(ValidationError):
            Task("t", 1.0, output_size=-1.0)

    def test_requirements_frozen(self):
        task = Task("t", 1.0, requirements={"gpu"})
        assert task.requirements == frozenset({"gpu"})


class TestWorkflowStructure:
    def test_cycle_detected(self):
        with pytest.raises(WorkflowGraphError):
            Workflow("w", [Task("a", 1), Task("b", 1)],
                     [("a", "b"), ("b", "a")])

    def test_self_loop_detected(self):
        with pytest.raises(WorkflowGraphError):
            Workflow("w", [Task("a", 1)], [("a", "a")])

    def test_unknown_edge_endpoint(self):
        with pytest.raises(WorkflowGraphError):
            Workflow("w", [Task("a", 1)], [("a", "ghost")])

    def test_duplicate_task(self):
        with pytest.raises(WorkflowGraphError):
            Workflow("w", [Task("a", 1), Task("a", 2)])

    def test_duplicate_edge_deduplicated(self):
        wf = Workflow("w", [Task("a", 1), Task("b", 1)],
                      [("a", "b"), ("a", "b")])
        assert wf.edges == (("a", "b"),)

    def test_empty_rejected(self):
        with pytest.raises(WorkflowGraphError):
            Workflow("w", [])

    def test_topological_order_respects_edges(self):
        wf = diamond()
        order = wf.topological_order()
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("a") < order.index("c") < order.index("d")

    def test_sources_sinks(self):
        wf = diamond()
        assert wf.sources() == ("a",)
        assert wf.sinks() == ("d",)

    def test_neighbors(self):
        wf = diamond()
        assert set(wf.successors("a")) == {"b", "c"}
        assert set(wf.predecessors("d")) == {"b", "c"}
        with pytest.raises(WorkflowGraphError):
            wf.successors("ghost")


class TestWorkflowAnalysis:
    def test_total_work(self):
        assert diamond().total_work() == pytest.approx(40.0)

    def test_critical_path(self):
        path, length = diamond().critical_path()
        assert path[0] == "a" and path[-1] == "d"
        assert len(path) == 3
        assert length == pytest.approx(30.0)

    def test_critical_path_single_task(self):
        wf = Workflow("w", [Task("only", 5.0)])
        path, length = wf.critical_path()
        assert path == ("only",)
        assert length == 5.0

    def test_width_profile(self):
        assert diamond().width_profile() == {0: 1, 1: 2, 2: 1}


class TestGenerators:
    def test_random_workflow_is_dag(self):
        wf = random_workflow(50, seed=7, edge_probability=0.3)
        assert len(wf) == 50
        order = {k: i for i, k in enumerate(wf.topological_order())}
        assert all(order[a] < order[b] for a, b in wf.edges)

    def test_random_workflow_deterministic(self):
        a = random_workflow(30, seed=1)
        b = random_workflow(30, seed=1)
        assert a.edges == b.edges
        assert [t.work for t in a] == [t.work for t in b]

    def test_random_workflow_validation(self):
        with pytest.raises(ValidationError):
            random_workflow(0)
        with pytest.raises(ValidationError):
            random_workflow(5, edge_probability=1.5)

    def test_layered_workflow_shape(self):
        wf = layered_workflow(3, 4)
        assert len(wf) == 12
        assert wf.width_profile() == {0: 4, 1: 4, 2: 4}
        assert len(wf.edges) == 2 * 4 * 4

    def test_layered_validation(self):
        with pytest.raises(ValidationError):
            layered_workflow(0, 3)
