"""Unit tests for inferential statistics."""

import numpy as np
import pytest

from repro.errors import StatsError
from repro.stats.frequency import FrequencyTable
from repro.stats.inference import (
    bootstrap_share_ci,
    chi_square_gof,
    chi_square_homogeneity,
    g_test_gof,
    permutation_mean_test,
    permutation_tvd_test,
    total_variation_distance,
)


class TestGoodnessOfFit:
    def test_uniform_data_not_rejected(self):
        result = chi_square_gof([100, 101, 99, 100])
        assert result.p_value > 0.9
        assert not result.significant()

    def test_skewed_data_rejected(self):
        result = chi_square_gof([1000, 5, 5, 5])
        assert result.significant(0.001)

    def test_custom_expected_shares(self):
        result = chi_square_gof([80, 20], expected_shares=[0.8, 0.2])
        assert result.p_value > 0.9

    def test_expected_shares_must_sum_to_one(self):
        with pytest.raises(StatsError):
            chi_square_gof([1, 2], expected_shares=[0.5, 0.4])

    def test_expected_shares_shape(self):
        with pytest.raises(StatsError):
            chi_square_gof([1, 2], expected_shares=[1.0])

    def test_g_test_agrees_qualitatively(self):
        chi = chi_square_gof([1000, 5, 5, 5])
        g = g_test_gof([1000, 5, 5, 5])
        assert g.significant(0.001) and chi.significant(0.001)

    def test_dof(self):
        assert chi_square_gof([1, 2, 3]).dof == 2

    def test_alpha_validation(self):
        result = chi_square_gof([10, 10])
        with pytest.raises(StatsError):
            result.significant(0)


class TestHomogeneity:
    def test_identical_distributions(self):
        result = chi_square_homogeneity([10, 20, 30], [20, 40, 60])
        assert result.p_value > 0.99

    def test_very_different_distributions(self):
        result = chi_square_homogeneity([100, 0, 0], [0, 0, 100])
        assert result.significant(0.001)

    def test_accepts_frequency_tables(self):
        a = FrequencyTable({"x": 3, "y": 7})
        b = FrequencyTable({"x": 30, "y": 70})
        assert chi_square_homogeneity(a, b).p_value > 0.9

    def test_jointly_empty_categories_dropped(self):
        result = chi_square_homogeneity([5, 0, 5], [6, 0, 4])
        assert result.dof == 1  # third category carries no information

    def test_shape_mismatch(self):
        with pytest.raises(StatsError):
            chi_square_homogeneity([1, 2], [1, 2, 3])


class TestBootstrap:
    def test_ci_contains_point_estimate(self):
        counts = [3, 7, 3, 6, 6]
        low, high = bootstrap_share_ci(counts, 1, seed=1, n_resamples=2000)
        assert low <= 7 / 25 <= high
        assert 0.0 <= low < high <= 1.0

    def test_deterministic_under_seed(self):
        counts = [4, 11, 1, 6, 6]
        a = bootstrap_share_ci(counts, 2, seed=9, n_resamples=1000)
        b = bootstrap_share_ci(counts, 2, seed=9, n_resamples=1000)
        assert a == b

    def test_narrower_with_more_data(self):
        small = bootstrap_share_ci([3, 7], 1, seed=0, n_resamples=3000)
        big = bootstrap_share_ci([300, 700], 1, seed=0, n_resamples=3000)
        assert (big[1] - big[0]) < (small[1] - small[0])

    def test_validation(self):
        with pytest.raises(StatsError):
            bootstrap_share_ci([1, 2], 5)
        with pytest.raises(StatsError):
            bootstrap_share_ci([1, 2], 0, confidence=1.5)
        with pytest.raises(StatsError):
            bootstrap_share_ci([1, 2], 0, n_resamples=10)

    def test_seed_and_rng_mutually_exclusive(self):
        with pytest.raises(StatsError, match="not both"):
            bootstrap_share_ci([3, 7], 1, seed=0,
                               rng=np.random.default_rng(0))

    def test_rng_alone_accepted(self):
        low, high = bootstrap_share_ci(
            [3, 7], 1, rng=np.random.default_rng(1), n_resamples=500
        )
        assert 0.0 <= low < high <= 1.0


class TestTvdAndPermutation:
    def test_tvd_identical_zero(self):
        assert total_variation_distance([1, 2, 3], [2, 4, 6]) == pytest.approx(0.0)

    def test_tvd_disjoint_one(self):
        assert total_variation_distance([5, 0], [0, 5]) == pytest.approx(1.0)

    def test_tvd_supply_demand(self):
        tvd = total_variation_distance([3, 7, 3, 6, 6], [4, 11, 1, 6, 6])
        assert tvd == pytest.approx(0.1357, abs=1e-3)

    def test_permutation_identical_high_p(self):
        result = permutation_tvd_test([30, 30, 30], [30, 30, 30],
                                      seed=0, n_permutations=500)
        assert result.p_value > 0.5

    def test_permutation_disjoint_low_p(self):
        result = permutation_tvd_test([200, 0], [0, 200],
                                      seed=0, n_permutations=2000)
        assert result.p_value < 0.01

    def test_permutation_p_in_unit_interval(self):
        result = permutation_tvd_test([3, 7, 3, 6, 6], [4, 11, 1, 6, 6],
                                      seed=3, n_permutations=500)
        assert 0.0 < result.p_value <= 1.0

    def test_permutation_deterministic(self):
        kwargs = dict(seed=4, n_permutations=500)
        a = permutation_tvd_test([3, 7], [5, 5], **kwargs)
        b = permutation_tvd_test([3, 7], [5, 5], **kwargs)
        assert a.p_value == b.p_value

    def test_rng_and_seed_mutually_exclusive_ok(self):
        rng = np.random.default_rng(0)
        result = permutation_tvd_test([3, 7], [5, 5], rng=rng,
                                      n_permutations=200)
        assert result.method == "permutation TVD"

    def test_seed_and_rng_mutually_exclusive(self):
        with pytest.raises(StatsError, match="not both"):
            permutation_tvd_test([3, 7], [5, 5], seed=0,
                                 rng=np.random.default_rng(0),
                                 n_permutations=200)


class TestPermutationMean:
    """Difference-in-means permutation test backing the run watchdog."""

    def test_shifted_samples_low_p(self):
        a = [1.00, 1.02, 0.98, 1.01, 0.99, 1.00]
        b = [3.00, 3.01, 2.99, 3.02, 2.98, 3.00]
        result = permutation_mean_test(a, b, seed=0, n_permutations=2000)
        assert result.statistic == pytest.approx(2.0, abs=0.05)
        assert result.p_value < 0.01

    def test_same_distribution_high_p(self):
        rng = np.random.default_rng(7)
        a = rng.normal(1.0, 0.1, size=20)
        b = rng.normal(1.0, 0.1, size=20)
        result = permutation_mean_test(a, b, seed=1, n_permutations=2000)
        assert result.p_value > 0.05

    def test_all_identical_observations_p_one(self):
        result = permutation_mean_test([2.0, 2.0, 2.0], [2.0, 2.0],
                                       seed=0, n_permutations=200)
        assert result.p_value == 1.0
        assert result.statistic == 0.0

    def test_deterministic_under_seed(self):
        kwargs = dict(seed=5, n_permutations=500)
        a = permutation_mean_test([1.0, 1.1, 0.9], [1.4, 1.5, 1.3], **kwargs)
        b = permutation_mean_test([1.0, 1.1, 0.9], [1.4, 1.5, 1.3], **kwargs)
        assert a.p_value == b.p_value

    def test_too_few_observations_raise(self):
        with pytest.raises(StatsError):
            permutation_mean_test([1.0], [1.0, 2.0])

    def test_non_finite_rejected(self):
        with pytest.raises(StatsError):
            permutation_mean_test([1.0, float("nan")], [1.0, 2.0])

    def test_seed_and_rng_mutually_exclusive(self):
        with pytest.raises(StatsError):
            permutation_mean_test([1.0, 2.0], [1.0, 2.0],
                                  seed=0, rng=np.random.default_rng(0))
