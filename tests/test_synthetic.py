"""Unit tests for the synthetic dataset generators."""

import pytest

from repro.core.catalog import validate_ecosystem
from repro.core.classification import KeywordClassifier, evaluate_classifier
from repro.corpus.dedup import find_duplicates
from repro.data.synthetic import (
    synthetic_corpus,
    synthetic_ecosystem,
    synthetic_ratings,
    synthetic_workflows,
)
from repro.errors import ValidationError
from repro.screening.agreement import fleiss_kappa


class TestSyntheticEcosystem:
    def test_validates(self):
        institutions, tools, applications, scheme = synthetic_ecosystem(seed=1)
        validate_ecosystem(institutions, tools, applications, scheme)
        assert len(tools) == 25
        assert len(applications) == 10

    def test_deterministic(self):
        _, tools_a, _, _ = synthetic_ecosystem(seed=3)
        _, tools_b, _, _ = synthetic_ecosystem(seed=3)
        assert [t.description for t in tools_a] == [t.description for t in tools_b]

    def test_different_seeds_differ(self):
        _, tools_a, _, _ = synthetic_ecosystem(seed=1)
        _, tools_b, _, _ = synthetic_ecosystem(seed=2)
        assert [t.primary_direction for t in tools_a] != [
            t.primary_direction for t in tools_b
        ]

    def test_descriptions_carry_signal(self):
        _, tools, _, scheme = synthetic_ecosystem(n_tools=100, seed=5)
        classifier = KeywordClassifier(scheme)
        predictions = classifier.classify_many([t.description for t in tools])
        gold = [t.primary_direction for t in tools]
        evaluation = evaluate_classifier(predictions, gold, scheme)
        assert evaluation.accuracy > 0.7

    def test_every_application_selects_something(self):
        _, _, applications, _ = synthetic_ecosystem(
            seed=7, selection_rate=0.0
        )
        assert all(len(a.selected_tools) >= 1 for a in applications)

    def test_validation(self):
        with pytest.raises(ValidationError):
            synthetic_ecosystem(n_tools=0)
        with pytest.raises(ValidationError):
            synthetic_ecosystem(selection_rate=1.5)


class TestSyntheticCorpus:
    def test_size_and_determinism(self):
        a = synthetic_corpus(50, seed=2)
        b = synthetic_corpus(50, seed=2)
        assert len(a) == 50
        assert [p.title for p in a] == [p.title for p in b]

    def test_injected_duplicates_found(self):
        corpus = synthetic_corpus(100, seed=4, duplicate_fraction=0.2)
        clusters = find_duplicates(list(corpus))
        clustered = sum(len(c) for c in clusters)
        # 20 duplicates injected; most should be recovered.
        assert clustered >= 30  # 15+ clusters of >= 2

    def test_no_duplicates_by_default(self):
        corpus = synthetic_corpus(60, seed=1)
        clusters = find_duplicates(list(corpus))
        # Titles carry a unique index, so no spurious merges.
        assert clusters == []

    def test_year_range_respected(self):
        corpus = synthetic_corpus(40, seed=0, year_range=(2010, 2012))
        lo, hi = corpus.year_range()
        assert lo >= 2010 and hi <= 2013  # +1 from duplicate mutation absent here

    def test_validation(self):
        with pytest.raises(ValidationError):
            synthetic_corpus(0)
        with pytest.raises(ValidationError):
            synthetic_corpus(10, duplicate_fraction=1.0)
        with pytest.raises(ValidationError):
            synthetic_corpus(10, year_range=(2020, 2010))


class TestSyntheticRatings:
    def test_shape(self):
        ratings = synthetic_ratings(50, 3, 4, seed=0)
        assert len(ratings) == 3
        assert all(len(r) == 50 for r in ratings)

    def test_agreement_monotone_in_parameter(self):
        def kappa_at(agreement):
            ratings = synthetic_ratings(
                400, 3, 5, agreement=agreement, seed=9
            )
            rows = []
            for i in range(400):
                counts = {}
                for rater in ratings:
                    counts[rater[i]] = counts.get(rater[i], 0) + 1
                rows.append(counts)
            return fleiss_kappa(rows)

        assert kappa_at(0.95) > kappa_at(0.6) > kappa_at(0.3)

    def test_perfect_agreement(self):
        ratings = synthetic_ratings(30, 2, 3, agreement=1.0, seed=1)
        assert ratings[0] == ratings[1]

    def test_validation(self):
        with pytest.raises(ValidationError):
            synthetic_ratings(0)
        with pytest.raises(ValidationError):
            synthetic_ratings(10, 1)
        with pytest.raises(ValidationError):
            synthetic_ratings(10, 2, 5, agreement=1.5)


class TestSyntheticWorkflows:
    def test_fleet_shape_and_names_unique(self):
        fleet = synthetic_workflows(6, seed=0)
        assert len(fleet) == 6
        names = [w.name for w in fleet]
        assert len(set(names)) == 6

    def test_mixes_pipelines_and_random_dags(self):
        fleet = synthetic_workflows(6, pipeline_fraction=0.5, seed=1)
        pipelines = [w for w in fleet if "pipeline" in w.name]
        randoms = [w for w in fleet if "random" in w.name]
        assert len(pipelines) == 3 and len(randoms) == 3
        # Fork-join pipelines have full inter-layer wiring; random DAGs
        # have sparse forward edges.
        assert all(len(w.edges) > 0 for w in pipelines)

    def test_sizes_within_range(self):
        fleet = synthetic_workflows(
            8, size_range=(10, 20), pipeline_fraction=0.0, seed=2
        )
        assert all(10 <= len(w) <= 20 for w in fleet)

    def test_deterministic_under_seed(self):
        from repro.continuum import workflow_to_dict

        a = synthetic_workflows(5, seed=3)
        b = synthetic_workflows(5, seed=3)
        assert [workflow_to_dict(w) for w in a] == [
            workflow_to_dict(w) for w in b
        ]

    def test_different_seeds_differ(self):
        a = synthetic_workflows(5, pipeline_fraction=0.0, seed=1)
        b = synthetic_workflows(5, pipeline_fraction=0.0, seed=2)
        assert [len(w) for w in a] != [len(w) for w in b] or [
            w.edges for w in a
        ] != [w.edges for w in b]

    def test_schedulable_on_default_continuum(self):
        from repro.continuum import HeftScheduler, default_continuum

        continuum = default_continuum(seed=0)
        for workflow in synthetic_workflows(3, seed=4):
            schedule = HeftScheduler().schedule(workflow, continuum)
            assert schedule.makespan > 0

    def test_validation(self):
        with pytest.raises(ValidationError):
            synthetic_workflows(0)
        with pytest.raises(ValidationError):
            synthetic_workflows(2, size_range=(5, 3))
        with pytest.raises(ValidationError):
            synthetic_workflows(2, pipeline_fraction=1.5)
