"""Unit tests for the BibTeX parser and writer."""

import pytest

from repro.corpus.bibtex import parse_bibtex, publications_from_bibtex, to_bibtex
from repro.corpus.publication import Publication
from repro.errors import BibTeXError


class TestParser:
    def test_basic_entry(self):
        entries = parse_bibtex(
            '@article{key1, title = {A Title}, year = {2021}}'
        )
        assert entries == [
            {"__type__": "article", "__key__": "key1",
             "title": "A Title", "year": "2021"}
        ]

    def test_quoted_values(self):
        entries = parse_bibtex('@misc{k, title = "Quoted Title"}')
        assert entries[0]["title"] == "Quoted Title"

    def test_nested_braces_protected(self):
        entries = parse_bibtex('@misc{k, title = {{HPC} and {AI} tools}}')
        assert entries[0]["title"] == "HPC and AI tools"

    def test_bare_number(self):
        entries = parse_bibtex("@misc{k, title={X}, year = 2020}")
        assert entries[0]["year"] == "2020"

    def test_string_macro_and_concat(self):
        source = '''
        @string{tpds = "IEEE TPDS"}
        @article{k, title = {T}, journal = tpds # " Journal"}
        '''
        entries = parse_bibtex(source)
        assert entries[0]["journal"] == "IEEE TPDS Journal"

    def test_month_macros(self):
        entries = parse_bibtex("@misc{k, title={X}, month = jan}")
        assert entries[0]["month"] == "January"

    def test_comment_and_preamble_skipped(self):
        source = '''
        @comment{anything here}
        @preamble{"\\newcommand{x}{y}"}
        free text between entries is ignored
        @misc{k, title = {Kept}}
        '''
        entries = parse_bibtex(source)
        assert len(entries) == 1

    def test_trailing_comma_ok(self):
        entries = parse_bibtex("@misc{k, title = {T},}")
        assert entries[0]["title"] == "T"

    def test_field_names_lowercased(self):
        entries = parse_bibtex("@misc{k, TITLE = {T}}")
        assert entries[0]["title"] == "T"

    def test_tex_escapes_cleaned(self):
        entries = parse_bibtex(r"@misc{k, title = {A \& B 100\%}}")
        assert entries[0]["title"] == "A & B 100%"

    def test_empty_input(self):
        assert parse_bibtex("") == []

    def test_unterminated_entry_reports_line(self):
        with pytest.raises(BibTeXError) as info:
            parse_bibtex("@misc{k,\n title = {T}")
        assert info.value.line is not None

    def test_undefined_macro(self):
        with pytest.raises(BibTeXError):
            parse_bibtex("@misc{k, journal = unknownmacro}")

    def test_unterminated_brace(self):
        with pytest.raises(BibTeXError):
            parse_bibtex("@misc{k, title = {unclosed")


class TestPublicationsFromBibtex:
    def test_fields_mapped(self):
        pubs = publications_from_bibtex(
            '''@inproceedings{k,
              author = {Rossi, Anna and Bianchi, Bruno},
              title = {Workflow Things},
              booktitle = {Some Conf},
              year = {2022},
              doi = {10.1/x},
              keywords = {a; b, c}
            }'''
        )
        pub = pubs[0]
        assert pub.authors == ("Rossi, Anna", "Bianchi, Bruno")
        assert pub.venue == "Some Conf"
        assert pub.year == 2022
        assert pub.keywords == ("a", "b", "c")
        assert pub.kind == "inproceedings"

    def test_missing_title_rejected(self):
        with pytest.raises(BibTeXError):
            publications_from_bibtex("@misc{k, year = {2020}}")

    def test_unparsable_year_kept_none(self):
        pubs = publications_from_bibtex(
            "@misc{k, title = {T}, year = {in press}}"
        )
        assert pubs[0].year is None


class TestRoundTrip:
    def test_roundtrip_preserves_core_fields(self):
        original = Publication(
            key="x2021y",
            title="Title with & special % chars",
            authors=("Rossi, Anna",),
            year=2021,
            venue="Venue",
            abstract="An abstract.",
            doi="10.1/x",
            keywords=("kw1", "kw2"),
            kind="article",
        )
        text = to_bibtex([original])
        (restored,) = publications_from_bibtex(text)
        assert restored.title == original.title
        assert restored.authors == original.authors
        assert restored.year == original.year
        assert restored.venue == original.venue
        assert restored.doi == original.doi
        assert restored.keywords == original.keywords

    def test_empty_list(self):
        assert to_bibtex([]) == ""

    def test_paper_bibliography_roundtrips(self):
        from repro.data.bibliography import paper_bibliography

        corpus = paper_bibliography()
        text = corpus.to_bibtex()
        restored = publications_from_bibtex(text)
        assert len(restored) == len(corpus)
        assert all(
            a.title == b.title for a, b in zip(corpus, restored)
        )
