"""Unit tests for the BibTeX parser and writer."""

import pytest

from repro.corpus.bibtex import (
    RejectedEntry,
    iter_publications_from_bibtex,
    make_key_if_missing,
    parse_bibtex,
    publications_from_bibtex,
    to_bibtex,
)
from repro.corpus.publication import Publication
from repro.errors import BibTeXError


class TestParser:
    def test_basic_entry(self):
        entries = list(parse_bibtex(
            '@article{key1, title = {A Title}, year = {2021}}'
        ))
        assert entries == [
            {"__type__": "article", "__key__": "key1",
             "title": "A Title", "year": "2021"}
        ]

    def test_streaming_generator(self):
        # The parser is lazy: one entry is available before the rest of
        # the input is consumed, which is what bounds ingestion memory.
        import types

        stream = parse_bibtex("@misc{a, title={A}}\n@misc{b, title={B}}")
        assert isinstance(stream, types.GeneratorType)
        assert next(stream)["__key__"] == "a"
        assert next(stream)["__key__"] == "b"

    def test_quoted_values(self):
        entries = list(parse_bibtex('@misc{k, title = "Quoted Title"}'))
        assert entries[0]["title"] == "Quoted Title"

    def test_nested_braces_protected(self):
        entries = list(parse_bibtex('@misc{k, title = {{HPC} and {AI} tools}}'))
        assert entries[0]["title"] == "HPC and AI tools"

    def test_bare_number(self):
        entries = list(parse_bibtex("@misc{k, title={X}, year = 2020}"))
        assert entries[0]["year"] == "2020"

    def test_string_macro_and_concat(self):
        source = '''
        @string{tpds = "IEEE TPDS"}
        @article{k, title = {T}, journal = tpds # " Journal"}
        '''
        entries = list(parse_bibtex(source))
        assert entries[0]["journal"] == "IEEE TPDS Journal"

    def test_month_macros(self):
        entries = list(parse_bibtex("@misc{k, title={X}, month = jan}"))
        assert entries[0]["month"] == "January"

    def test_comment_and_preamble_skipped(self):
        source = '''
        @comment{anything here}
        @preamble{"\\newcommand{x}{y}"}
        free text between entries is ignored
        @misc{k, title = {Kept}}
        '''
        entries = list(parse_bibtex(source))
        assert len(entries) == 1

    def test_trailing_comma_ok(self):
        entries = list(parse_bibtex("@misc{k, title = {T},}"))
        assert entries[0]["title"] == "T"

    def test_field_names_lowercased(self):
        entries = list(parse_bibtex("@misc{k, TITLE = {T}}"))
        assert entries[0]["title"] == "T"

    def test_tex_escapes_cleaned(self):
        entries = list(parse_bibtex(r"@misc{k, title = {A \& B 100\%}}"))
        assert entries[0]["title"] == "A & B 100%"

    def test_empty_input(self):
        assert list(parse_bibtex("")) == []

    def test_blank_key_tolerated(self):
        entries = list(parse_bibtex("@misc{, title = {No Key}}"))
        assert entries[0]["__key__"] == ""

    def test_unterminated_entry_reports_line(self):
        with pytest.raises(BibTeXError) as info:
            list(parse_bibtex("@misc{k,\n title = {T}"))
        assert info.value.line is not None

    def test_undefined_macro(self):
        with pytest.raises(BibTeXError):
            list(parse_bibtex("@misc{k, journal = unknownmacro}"))

    def test_unterminated_brace(self):
        with pytest.raises(BibTeXError):
            list(parse_bibtex("@misc{k, title = {unclosed"))


class TestPublicationsFromBibtex:
    def test_fields_mapped(self):
        pubs = publications_from_bibtex(
            '''@inproceedings{k,
              author = {Rossi, Anna and Bianchi, Bruno},
              title = {Workflow Things},
              booktitle = {Some Conf},
              year = {2022},
              doi = {10.1/x},
              keywords = {a; b, c}
            }'''
        )
        pub = pubs[0]
        assert pub.authors == ("Rossi, Anna", "Bianchi, Bruno")
        assert pub.venue == "Some Conf"
        assert pub.year == 2022
        assert pub.keywords == ("a", "b", "c")
        assert pub.kind == "inproceedings"

    def test_missing_title_rejected(self):
        with pytest.raises(BibTeXError):
            publications_from_bibtex("@misc{k, year = {2020}}")

    def test_unparsable_year_kept_none(self):
        pubs = publications_from_bibtex(
            "@misc{k, title = {T}, year = {in press}}"
        )
        assert pubs[0].year is None

    def test_unicode_digit_year_kept_none(self):
        # "²⁰²⁰".isdigit() is True but int() raises — such a year must be
        # treated as missing, not crash the whole import.
        pubs = publications_from_bibtex(
            "@misc{k, title = {T}, year = {²⁰²⁰}}"
        )
        assert pubs[0].year is None

    def test_fullwidth_digit_year_kept_none(self):
        pubs = publications_from_bibtex(
            "@misc{k, title = {T}, year = {２０２０}}"
        )
        assert pubs[0].year is None

    def test_blank_key_derived(self):
        pubs = publications_from_bibtex(
            "@article{, title = {Workflow Study}, "
            "author = {Rossi, Anna}, year = {2021}}"
        )
        assert pubs[0].key == "rossi2021workflow"

    def test_lenient_mode_collects_rejects(self):
        rejected = []
        pubs = publications_from_bibtex(
            """
            @misc{good, title = {Kept}}
            @misc{notitle, year = {2020}}
            @misc{second, title = {Also Kept}}
            """,
            strict=False,
            rejected=rejected,
        )
        assert [p.key for p in pubs] == ["good", "second"]
        assert len(rejected) == 1
        assert isinstance(rejected[0], RejectedEntry)
        assert rejected[0].key == "notitle"
        assert "title" in rejected[0].reason

    def test_lenient_mode_rejects_out_of_range_numeric_year(self):
        # A numeric-but-invalid year fails Publication validation; under
        # strict=False that is a reject, not an abort.
        rejected = []
        pubs = publications_from_bibtex(
            "@misc{k, title = {T}, year = {123}}",
            strict=False,
            rejected=rejected,
        )
        assert pubs == []
        assert rejected[0].key == "k"

    def test_strict_default_raises(self):
        with pytest.raises(BibTeXError):
            publications_from_bibtex(
                "@misc{good, title = {Kept}}\n@misc{notitle, year = {2020}}"
            )

    def test_iter_variant_streams(self):
        stream = iter_publications_from_bibtex(
            "@misc{a, title={A}}\n@misc{b, title={B}}"
        )
        assert next(stream).key == "a"
        assert next(stream).key == "b"


class TestMakeKeyIfMissing:
    def test_existing_key_kept(self):
        assert make_key_if_missing(
            {"__key__": "keep", "title": "T"}
        ) == "keep"

    def test_derived_from_author_year_title(self):
        entry = {
            "__key__": "",
            "author": "Colonnelli, Iacopo and Aldinucci, Marco",
            "year": "2021",
            "title": "StreamFlow: cross-breeding",
        }
        assert make_key_if_missing(entry) == "colonnelli2021streamflow"

    def test_unicode_digit_year_ignored_in_key(self):
        entry = {"__key__": "", "author": "Rossi, A.", "year": "²⁰²⁰",
                 "title": "Workflows"}
        assert make_key_if_missing(entry) == "rossi0000workflows"


class TestRoundTrip:
    def test_roundtrip_preserves_core_fields(self):
        original = Publication(
            key="x2021y",
            title="Title with & special % chars",
            authors=("Rossi, Anna",),
            year=2021,
            venue="Venue",
            abstract="An abstract.",
            doi="10.1/x",
            keywords=("kw1", "kw2"),
            kind="article",
        )
        text = to_bibtex([original])
        (restored,) = publications_from_bibtex(text)
        assert restored.title == original.title
        assert restored.authors == original.authors
        assert restored.year == original.year
        assert restored.venue == original.venue
        assert restored.doi == original.doi
        assert restored.keywords == original.keywords

    def test_empty_list(self):
        assert to_bibtex([]) == ""

    def test_paper_bibliography_roundtrips(self):
        from repro.data.bibliography import paper_bibliography

        corpus = paper_bibliography()
        text = corpus.to_bibtex()
        restored = publications_from_bibtex(text)
        assert len(restored) == len(corpus)
        assert all(
            a.title == b.title for a, b in zip(corpus, restored)
        )
