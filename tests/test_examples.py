"""Integration smoke tests: every example script must run end to end.

Each example runs as a subprocess in a temporary working directory (so
``output/`` artifacts land in the sandbox) and its stdout is checked for
the findings it is supposed to print.

The subprocess environment pins ``PYTHONPATH`` to the repo's *absolute*
``src`` directory: the examples must import :mod:`repro` regardless of
the inherited environment or the current working directory (a relative
``PYTHONPATH=src`` would silently stop resolving under ``cwd=tmp_path``).
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"

CASES = {
    "quickstart.py": ["Orchestration", "Figure 4", "artifacts"],
    "custom_mapping_study.py": ["after dedup", "kappa", "Shannon evenness"],
    "continuum_scheduling.py": ["makespan", "slowdown", "Gantt"],
    "tool_recommendation.py": ["Validation against the published Table 2",
                               "recommended tools"],
    "bibliometrics.py": ["Linear trend", "Top venues", "Figures written"],
    "pipeline_caching.py": ["cold run", "warm run", "stages executed",
                            "resumed run"],
    "pipeline_profiling.py": ["span tree", "peak active screeners",
                              "stage duration percentiles",
                              "Chrome trace written"],
    "run_ledger.py": ["Recording two study runs", "ledger:",
                      "clean compare", "result drift -> exit code 3",
                      "perf regression -> exit code 4",
                      "Structured NDJSON log"],
}


def example_env() -> dict[str, str]:
    """Subprocess env whose ``PYTHONPATH`` works from any working directory."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    inherited = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src if not inherited else os.pathsep.join([src, inherited])
    )
    return env


@pytest.mark.parametrize("script", sorted(CASES))
def test_example_runs(script, tmp_path):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        cwd=tmp_path,
        env=example_env(),
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    for fragment in CASES[script]:
        assert fragment in result.stdout, (
            f"{script}: {fragment!r} missing from output"
        )


def test_every_example_is_covered():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(CASES), (
        "examples/ and the smoke-test table diverged"
    )
