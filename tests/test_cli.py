"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as info:
            build_parser().parse_args(["--version"])
        assert info.value.code == 0


class TestValidate:
    def test_ok(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "25 tools" in out
        assert "dataset OK" in out


class TestClassify:
    def test_orchestration_text(self, capsys):
        assert main(["classify", "a TOSCA orchestrator for Kubernetes"]) == 0
        assert "Orchestration" in capsys.readouterr().out

    def test_energy_text(self, capsys):
        assert main(["classify", "minimizing the energy footprint of VMs"]) == 0
        assert "Energy efficiency" in capsys.readouterr().out

    def test_empty_text_fails(self, capsys):
        assert main(["classify", "   "]) == 1
        assert "error" in capsys.readouterr().err


class TestRecommend:
    def test_migration_query_hits_movequic(self, capsys):
        assert main(
            ["recommend", "live migration of edge microservices", "-k", "3"]
        ) == 0
        assert "MoveQUIC" in capsys.readouterr().out

    def test_bad_k(self, capsys):
        assert main(["recommend", "anything", "-k", "0"]) == 1


class TestReplicate:
    def test_prints_findings(self, capsys):
        assert main(["replicate"]) == 0
        out = capsys.readouterr().out
        assert "most demanded: Orchestration" in out
        assert "least demanded: Energy efficiency" in out
        assert "accuracy 1.00" in out

    def test_writes_artifacts(self, tmp_path, capsys):
        assert main(["replicate", "--output", str(tmp_path)]) == 0
        assert (tmp_path / "report.md").exists()
        assert (tmp_path / "fig2_tool_distribution.svg").exists()
        assert (tmp_path / "table2.md").exists()


class TestReport:
    def test_full_report(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "## Q1" in out
        assert "## Table 2" in out


class TestFigures:
    def test_writes_all(self, tmp_path, capsys):
        assert main(["figures", "--output", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out
        assert (tmp_path / "fig4_selection_votes.svg").exists()


class TestExport:
    def test_json(self, tmp_path, capsys):
        target = tmp_path / "eco.json"
        assert main(["export", "--json", str(target)]) == 0
        from repro.io.jsonio import load_ecosystem

        _, tools, _, _ = load_ecosystem(target)
        assert len(tools) == 25

    def test_bibtex(self, tmp_path):
        target = tmp_path / "refs.bib"
        assert main(["export", "--bibtex", str(target)]) == 0
        from repro.corpus import Corpus

        assert len(Corpus.from_bibtex(target.read_text())) == 49

    def test_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            main(["export"])
