"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as info:
            build_parser().parse_args(["--version"])
        assert info.value.code == 0

    def test_version_exit_code_through_main(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(["--version"])
        assert info.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_unknown_subcommand_exits_2(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(["frobnicate"])
        assert info.value.code == 2
        assert "invalid choice" in capsys.readouterr().err


class TestValidate:
    def test_ok(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "25 tools" in out
        assert "dataset OK" in out


class TestClassify:
    def test_orchestration_text(self, capsys):
        assert main(["classify", "a TOSCA orchestrator for Kubernetes"]) == 0
        assert "Orchestration" in capsys.readouterr().out

    def test_energy_text(self, capsys):
        assert main(["classify", "minimizing the energy footprint of VMs"]) == 0
        assert "Energy efficiency" in capsys.readouterr().out

    def test_empty_text_fails(self, capsys):
        assert main(["classify", "   "]) == 1
        assert "error" in capsys.readouterr().err


class TestRecommend:
    def test_migration_query_hits_movequic(self, capsys):
        assert main(
            ["recommend", "live migration of edge microservices", "-k", "3"]
        ) == 0
        assert "MoveQUIC" in capsys.readouterr().out

    def test_bad_k(self, capsys):
        assert main(["recommend", "anything", "-k", "0"]) == 1


class TestReplicate:
    def test_prints_findings(self, capsys):
        assert main(["replicate"]) == 0
        out = capsys.readouterr().out
        assert "most demanded: Orchestration" in out
        assert "least demanded: Energy efficiency" in out
        assert "accuracy 1.00" in out

    def test_writes_artifacts(self, tmp_path, capsys):
        assert main(["replicate", "--output", str(tmp_path)]) == 0
        assert (tmp_path / "report.md").exists()
        assert (tmp_path / "fig2_tool_distribution.svg").exists()
        assert (tmp_path / "table2.md").exists()

    def test_profile_prints_stage_table(self, tmp_path, capsys):
        assert main(
            ["replicate", "--profile", "--cache-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "Profile —" in out
        for stage in ("collect", "classify", "survey", "analyze"):
            assert stage in out
        assert "cache:" in out

    def test_trace_out_writes_chrome_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        assert main(
            ["replicate", "--trace-out", str(trace_path),
             "--cache-dir", str(tmp_path / "cache")]
        ) == 0
        out = capsys.readouterr().out
        assert "wrote Chrome trace" in out
        import json

        payload = json.loads(trace_path.read_text())
        names = {e["name"] for e in payload["traceEvents"] if e["ph"] == "X"}
        assert "pipeline.run" in names
        assert "stage:analyze" in names


class TestTrace:
    def test_renders_saved_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        assert main(
            ["replicate", "--trace-out", str(trace_path),
             "--cache-dir", str(tmp_path / "cache")]
        ) == 0
        capsys.readouterr()
        assert main(["trace", str(trace_path), "--width", "40"]) == 0
        out = capsys.readouterr().out
        assert "pipeline.run" in out
        assert "stage:collect" in out

    def test_missing_file_fails(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "nope.json")]) == 1
        assert "error" in capsys.readouterr().err


class TestReport:
    def test_full_report(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "## Q1" in out
        assert "## Table 2" in out


class TestFigures:
    def test_writes_all(self, tmp_path, capsys):
        assert main(["figures", "--output", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out
        assert (tmp_path / "fig4_selection_votes.svg").exists()


class TestExport:
    def test_json(self, tmp_path, capsys):
        target = tmp_path / "eco.json"
        assert main(["export", "--json", str(target)]) == 0
        from repro.io.jsonio import load_ecosystem

        _, tools, _, _ = load_ecosystem(target)
        assert len(tools) == 25

    def test_bibtex(self, tmp_path):
        target = tmp_path / "refs.bib"
        assert main(["export", "--bibtex", str(target)]) == 0
        from repro.corpus import Corpus

        assert len(Corpus.from_bibtex(target.read_text())) == 49

    def test_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            main(["export"])


class TestSweep:
    GRID = "scheduler=heft,round_robin;mtbf=50,none;jitter=0.1"

    def test_prints_cell_table(self, capsys):
        assert main(
            ["sweep", "--grid", self.GRID, "--fleet", "2",
             "--replications", "10", "--seed", "3", "--no-cache"]
        ) == 0
        out = capsys.readouterr().out
        assert "mtbf=50" in out and "mtbf=none" in out
        assert "8 cell(s) × 10 replication(s)" in out
        assert "80 simulations run" in out

    def test_json_output(self, tmp_path, capsys):
        import json

        target = tmp_path / "sweep.json"
        assert main(
            ["sweep", "--fleet", "1", "--replications", "5",
             "--grid", "mtbf=40", "--json", str(target), "--no-cache"]
        ) == 0
        payload = json.loads(target.read_text())
        assert len(payload["cells"]) == 1
        assert payload["cells"][0]["replications"] == 5
        assert payload["cells"][0]["metrics"]["makespan"]["count"] == 5

    def test_cache_dir_warm_rerun_executes_zero_simulations(
        self, tmp_path, capsys
    ):
        argv = ["sweep", "--fleet", "1", "--replications", "8",
                "--grid", "mtbf=40", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        assert "1 computed, 0 from cache" in capsys.readouterr().out
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "0 computed, 1 from cache (0 simulations run)" in out

    def test_workers_match_serial(self, tmp_path, capsys):
        import json

        a, b = tmp_path / "serial.json", tmp_path / "parallel.json"
        base = ["sweep", "--fleet", "1", "--replications", "6",
                "--grid", "mtbf=40", "--seed", "5", "--no-cache"]
        assert main(base + ["--workers", "0", "--json", str(a)]) == 0
        assert main(base + ["--workers", "2", "--json", str(b)]) == 0
        assert (
            json.loads(a.read_text())["cells"]
            == json.loads(b.read_text())["cells"]
        )

    def test_record_appends_to_ledger(self, tmp_path, capsys):
        assert main(
            ["sweep", "--fleet", "1", "--replications", "5",
             "--grid", "mtbf=40", "--no-cache",
             "--record", "--runs-dir", str(tmp_path)]
        ) == 0
        assert "recorded run" in capsys.readouterr().out
        assert main(["runs", "list", "--runs-dir", str(tmp_path)]) == 0
        assert "mc-sweep" in capsys.readouterr().out

    def test_bad_grid_errors_exit_1(self, capsys):
        assert main(["sweep", "--grid", "flux=9", "--no-cache"]) == 1
        assert "bad grid entry" in capsys.readouterr().err
        assert main(["sweep", "--grid", "mtbf=fast", "--no-cache"]) == 1
        assert "numeric" in capsys.readouterr().err
        assert main(["sweep", "--grid", "scheduler=alien",
                     "--no-cache"]) == 1
        assert "unknown scheduler" in capsys.readouterr().err

    def test_bad_fleet_errors_exit_1(self, capsys):
        assert main(["sweep", "--fleet", "0", "--no-cache"]) == 1
        assert "fleet" in capsys.readouterr().err

    def test_adaptive_flags_print_savings(self, capsys):
        assert main(
            ["sweep", "--fleet", "1", "--replications", "200",
             "--grid", "mtbf=40", "--seed", "3", "--no-cache",
             "--target-ci", "0.1", "--max-replications", "200"]
        ) == 0
        out = capsys.readouterr().out
        assert "adaptive to target-ci 0.1 (cap 200)" in out
        # A loose target stops the cell at the first 64-replication
        # round, well under the cap.
        assert "64 simulations run, 136 saved" in out

    def test_adaptive_json_includes_budget(self, tmp_path, capsys):
        import json

        target = tmp_path / "sweep.json"
        assert main(
            ["sweep", "--fleet", "1", "--replications", "200",
             "--grid", "mtbf=40", "--json", str(target), "--no-cache",
             "--target-ci", "0.1"]
        ) == 0
        payload = json.loads(target.read_text())
        assert payload["n_replications_budget"] == 200
        assert payload["n_replications_run"] < 200

    def test_bad_adaptive_flags_exit_1(self, capsys):
        assert main(
            ["sweep", "--fleet", "1", "--no-cache",
             "--max-replications", "50"]
        ) == 1
        assert "target" in capsys.readouterr().err.lower()
        assert main(
            ["sweep", "--fleet", "1", "--no-cache", "--target-ci", "-1"]
        ) == 1
        assert "target_ci" in capsys.readouterr().err


class TestRuns:
    """The run-ledger subcommands and their exit-code contract
    (0 = clean, 3 = result drift, 4 = perf regression, 1 = errors)."""

    @staticmethod
    def _record_run(tmp_path, capsys):
        assert main(
            ["replicate", "--record", "--runs-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "recorded run" in out
        return out

    def test_replicate_record_then_list_and_show(self, tmp_path, capsys):
        self._record_run(tmp_path, capsys)
        assert main(["runs", "list", "--runs-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "icsc-study" in out
        assert main(["runs", "show", "--runs-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "artifact table1" in out
        assert "stage analyze" in out

    def test_show_json_round_trips(self, tmp_path, capsys):
        import json

        self._record_run(tmp_path, capsys)
        assert main(
            ["runs", "show", "--runs-dir", str(tmp_path), "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "icsc-study"
        assert set(payload["artifacts"]) >= {"table1", "fig2_distribution"}

    def test_identical_runs_compare_exit_0(self, tmp_path, capsys):
        """Acceptance: two `replicate --record` runs on unchanged data
        produce identical digests and a clean gate."""
        self._record_run(tmp_path, capsys)
        self._record_run(tmp_path, capsys)
        assert main(["runs", "compare", "--runs-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "drift" not in out.replace("no drift", "")

    def test_single_run_compares_clean(self, tmp_path, capsys):
        self._record_run(tmp_path, capsys)
        assert main(["runs", "compare", "--runs-dir", str(tmp_path)]) == 0
        assert "nothing to compare" in capsys.readouterr().out

    def test_perturbed_run_exits_3_naming_the_artifact(
        self, tmp_path, capsys
    ):
        """Acceptance: a perturbed dataset artifact gates non-zero and
        names what changed."""
        import json

        from repro.obs import RunRegistry, digest_items

        self._record_run(tmp_path, capsys)
        self._record_run(tmp_path, capsys)
        # Perturb the newest record's Table 1 digest in the ledger.
        registry = RunRegistry(tmp_path)
        records = registry.runs()
        tampered = records[-1].to_dict()
        tampered["artifacts"]["table1"] = digest_items(
            [["tampered", 1]]
        ).to_dict()
        lines = [json.dumps(r.to_dict(), sort_keys=True) for r in records[:-1]]
        lines.append(json.dumps(tampered, sort_keys=True))
        registry.path.write_text("\n".join(lines) + "\n", encoding="utf-8")

        assert main(["runs", "compare", "--runs-dir", str(tmp_path)]) == 3
        out = capsys.readouterr().out
        assert "table1" in out
        assert "value" in out

    def test_compare_json_carries_exit_code(self, tmp_path, capsys):
        import json

        self._record_run(tmp_path, capsys)
        self._record_run(tmp_path, capsys)
        assert main(
            ["runs", "compare", "--runs-dir", str(tmp_path), "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["exit_code"] == 0
        assert payload["ok"] is True

    def test_compare_bench_perf_regression_exits_4(self, tmp_path, capsys):
        import json

        base = tmp_path / "base.json"
        cand = tmp_path / "cand.json"
        base.write_text(
            json.dumps({"results": {"bench_x": {"min_s": 0.01}}})
        )
        cand.write_text(
            json.dumps({"results": {"bench_x": {"min_s": 0.10}}})
        )
        assert main(
            ["runs", "compare", "--bench", str(base), str(cand),
             "--runs-dir", str(tmp_path)]
        ) == 4
        assert "slower" in capsys.readouterr().out

    def test_gc_prunes_to_keep(self, tmp_path, capsys):
        self._record_run(tmp_path, capsys)
        self._record_run(tmp_path, capsys)
        self._record_run(tmp_path, capsys)
        assert main(
            ["runs", "gc", "--runs-dir", str(tmp_path), "--keep", "1"]
        ) == 0
        assert "dropped 2" in capsys.readouterr().out
        assert main(["runs", "list", "--runs-dir", str(tmp_path)]) == 0
        listing = capsys.readouterr().out
        assert listing.count("icsc-study") == 1

    def test_empty_ledger_errors_exit_1(self, tmp_path, capsys):
        assert main(["runs", "show", "--runs-dir", str(tmp_path)]) == 1
        assert "no runs recorded" in capsys.readouterr().err
        assert main(["runs", "compare", "--runs-dir", str(tmp_path)]) == 1
        assert "no runs recorded" in capsys.readouterr().err

    def test_unknown_run_id_errors_exit_1(self, tmp_path, capsys):
        self._record_run(tmp_path, capsys)
        assert main(
            ["runs", "show", "zzz-does-not-exist",
             "--runs-dir", str(tmp_path)]
        ) == 1
        assert "no run" in capsys.readouterr().err

    def test_exit_codes_documented_in_help(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(["runs", "compare", "--help"])
        assert info.value.code == 0
        text = " ".join(capsys.readouterr().out.split())  # undo line wraps
        assert "3 = result drift" in text
        assert "4 = confirmed perf regression" in text

    def test_runs_requires_subcommand(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(["runs"])
        assert info.value.code == 2


class TestCorpus:
    """The persistent corpus-store subcommands."""

    BIB = """
    @article{k1, title={Workflow engines in the cloud},
             author={Rossi, Mario}, year={2020}, journal={FGCS}}
    @article{k2, title={Pipeline scheduling survey},
             author={Bianchi, Anna}, year={2021}, journal={TPDS}}
    @article{k1, title={Workflow engines in the cloud!},
             author={Rossi, Mario}, year={2020}, journal={FGCS}}
    @misc{notitle, year={2020}}
    """

    @classmethod
    def _write_bib(cls, tmp_path):
        path = tmp_path / "export.bib"
        path.write_text(cls.BIB, encoding="utf-8")
        return path

    def test_ingest_query_dedup_stats(self, tmp_path, capsys):
        bib = self._write_bib(tmp_path)
        store = tmp_path / "corpus.db"
        assert main(
            ["corpus", "ingest", str(bib), "--store", str(store),
             "--lenient", "--on-collision", "suffix"]
        ) == 0
        out = capsys.readouterr().out
        assert "3 ingested, 1 renamed, 1 rejected" in out
        assert "rejected notitle" in out

        assert main(
            ["corpus", "query", "workflow*", "--store", str(store)]
        ) == 0
        out = capsys.readouterr().out
        assert "k1" in out and "k1-2" in out
        assert "2 match(es)" in out

        assert main(["corpus", "dedup", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "1 cluster(s) merged" in out
        assert "3 -> 2 records" in out

        assert main(["corpus", "stats", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "records   2" in out

    def test_query_keys_only(self, tmp_path, capsys):
        bib = self._write_bib(tmp_path)
        store = tmp_path / "corpus.db"
        main(["corpus", "ingest", str(bib), "--store", str(store),
              "--lenient", "--on-collision", "suffix"])
        capsys.readouterr()
        assert main(
            ["corpus", "query", "survey", "--store", str(store),
             "--keys-only"]
        ) == 0
        assert capsys.readouterr().out.strip() == "k2"

    def test_strict_ingest_fails_on_bad_entry(self, tmp_path, capsys):
        bib = self._write_bib(tmp_path)
        store = tmp_path / "corpus.db"
        assert main(
            ["corpus", "ingest", str(bib), "--store", str(store),
             "--on-collision", "suffix"]
        ) == 1
        assert "error" in capsys.readouterr().err

    def test_default_collision_policy_errors(self, tmp_path, capsys):
        bib = self._write_bib(tmp_path)
        store = tmp_path / "corpus.db"
        assert main(
            ["corpus", "ingest", str(bib), "--store", str(store),
             "--lenient"]
        ) == 1
        assert "duplicate publication key" in capsys.readouterr().err

    def test_record_appends_to_ledger(self, tmp_path, capsys):
        bib = self._write_bib(tmp_path)
        store = tmp_path / "corpus.db"
        runs = tmp_path / "runs"
        assert main(
            ["corpus", "ingest", str(bib), "--store", str(store),
             "--lenient", "--on-collision", "suffix",
             "--record", "--runs-dir", str(runs)]
        ) == 0
        assert "recorded run" in capsys.readouterr().out
        assert main(["runs", "list", "--runs-dir", str(runs)]) == 0
        assert "corpus-store" in capsys.readouterr().out

    def test_query_missing_store_errors(self, tmp_path, capsys):
        # A typo'd --store must not materialize an empty database and
        # happily report zero matches; only ingest may create the file.
        missing = tmp_path / "nope" / "corpus.db"
        assert main(["corpus", "query", "workflow", "--store",
                     str(missing)]) == 1
        assert "no corpus store at" in capsys.readouterr().err
        assert not missing.parent.exists()

    def test_corpus_requires_subcommand(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(["corpus"])
        assert info.value.code == 2
