"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as info:
            build_parser().parse_args(["--version"])
        assert info.value.code == 0

    def test_version_exit_code_through_main(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(["--version"])
        assert info.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_unknown_subcommand_exits_2(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(["frobnicate"])
        assert info.value.code == 2
        assert "invalid choice" in capsys.readouterr().err


class TestValidate:
    def test_ok(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "25 tools" in out
        assert "dataset OK" in out


class TestClassify:
    def test_orchestration_text(self, capsys):
        assert main(["classify", "a TOSCA orchestrator for Kubernetes"]) == 0
        assert "Orchestration" in capsys.readouterr().out

    def test_energy_text(self, capsys):
        assert main(["classify", "minimizing the energy footprint of VMs"]) == 0
        assert "Energy efficiency" in capsys.readouterr().out

    def test_empty_text_fails(self, capsys):
        assert main(["classify", "   "]) == 1
        assert "error" in capsys.readouterr().err


class TestRecommend:
    def test_migration_query_hits_movequic(self, capsys):
        assert main(
            ["recommend", "live migration of edge microservices", "-k", "3"]
        ) == 0
        assert "MoveQUIC" in capsys.readouterr().out

    def test_bad_k(self, capsys):
        assert main(["recommend", "anything", "-k", "0"]) == 1


class TestReplicate:
    def test_prints_findings(self, capsys):
        assert main(["replicate"]) == 0
        out = capsys.readouterr().out
        assert "most demanded: Orchestration" in out
        assert "least demanded: Energy efficiency" in out
        assert "accuracy 1.00" in out

    def test_writes_artifacts(self, tmp_path, capsys):
        assert main(["replicate", "--output", str(tmp_path)]) == 0
        assert (tmp_path / "report.md").exists()
        assert (tmp_path / "fig2_tool_distribution.svg").exists()
        assert (tmp_path / "table2.md").exists()

    def test_profile_prints_stage_table(self, tmp_path, capsys):
        assert main(
            ["replicate", "--profile", "--cache-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "Profile —" in out
        for stage in ("collect", "classify", "survey", "analyze"):
            assert stage in out
        assert "cache:" in out

    def test_trace_out_writes_chrome_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        assert main(
            ["replicate", "--trace-out", str(trace_path),
             "--cache-dir", str(tmp_path / "cache")]
        ) == 0
        out = capsys.readouterr().out
        assert "wrote Chrome trace" in out
        import json

        payload = json.loads(trace_path.read_text())
        names = {e["name"] for e in payload["traceEvents"] if e["ph"] == "X"}
        assert "pipeline.run" in names
        assert "stage:analyze" in names


class TestTrace:
    def test_renders_saved_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        assert main(
            ["replicate", "--trace-out", str(trace_path),
             "--cache-dir", str(tmp_path / "cache")]
        ) == 0
        capsys.readouterr()
        assert main(["trace", str(trace_path), "--width", "40"]) == 0
        out = capsys.readouterr().out
        assert "pipeline.run" in out
        assert "stage:collect" in out

    def test_missing_file_fails(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "nope.json")]) == 1
        assert "error" in capsys.readouterr().err


class TestReport:
    def test_full_report(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "## Q1" in out
        assert "## Table 2" in out


class TestFigures:
    def test_writes_all(self, tmp_path, capsys):
        assert main(["figures", "--output", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out
        assert (tmp_path / "fig4_selection_votes.svg").exists()


class TestExport:
    def test_json(self, tmp_path, capsys):
        target = tmp_path / "eco.json"
        assert main(["export", "--json", str(target)]) == 0
        from repro.io.jsonio import load_ecosystem

        _, tools, _, _ = load_ecosystem(target)
        assert len(tools) == 25

    def test_bibtex(self, tmp_path):
        target = tmp_path / "refs.bib"
        assert main(["export", "--bibtex", str(target)]) == 0
        from repro.corpus import Corpus

        assert len(Corpus.from_bibtex(target.read_text())) == 49

    def test_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            main(["export"])
