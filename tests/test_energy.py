"""Unit tests for the platform power-trace model."""

import numpy as np
import pytest

from repro.continuum.energy import PowerTrace, energy_report, power_trace
from repro.continuum.resources import Continuum, Resource, ResourceKind, default_continuum
from repro.continuum.scheduling import HeftScheduler, Schedule, TaskPlacement
from repro.continuum.workflow import Task, Workflow, random_workflow
from repro.errors import ContinuumError


@pytest.fixture(scope="module")
def schedule():
    wf = random_workflow(30, seed=8)
    continuum = default_continuum(seed=8)
    return HeftScheduler().schedule(wf, continuum)


class TestPowerTrace:
    def test_energy_matches_independent_accounting(self, schedule):
        trace = power_trace(schedule, include_idle=True)
        assert trace.energy() == pytest.approx(schedule.total_energy(), rel=1e-9)

    def test_busy_only_matches_busy_energy(self, schedule):
        trace = power_trace(schedule, include_idle=False)
        assert trace.energy() == pytest.approx(schedule.busy_energy(), rel=1e-9)

    def test_peak_at_least_any_instant(self, schedule):
        trace = power_trace(schedule)
        rng = np.random.default_rng(0)
        for t in rng.uniform(0, trace.makespan, size=20):
            assert trace.power_at(float(t)) <= trace.peak_power() + 1e-9

    def test_power_at_bounds(self, schedule):
        trace = power_trace(schedule)
        with pytest.raises(ContinuumError):
            trace.power_at(-1.0)
        with pytest.raises(ContinuumError):
            trace.power_at(trace.makespan + 1.0)

    def test_baseline_is_idle_sum(self, schedule):
        trace = power_trace(schedule, include_idle=True)
        idle_total = float(schedule.continuum.idle_powers.sum())
        # Before the first task ends/starts overlapping, power >= idle sum.
        assert trace.power.min() >= idle_total - 1e-9

    def test_single_task_rectangle(self):
        continuum = Continuum(
            [Resource("r", ResourceKind.CLOUD, 10.0, idle_power=5.0,
                      busy_power=50.0)]
        )
        wf = Workflow("w", [Task("t", 100.0)])
        schedule = HeftScheduler().schedule(wf, continuum)
        trace = power_trace(schedule)
        # One 10-second busy segment at 50 W.
        assert trace.makespan == pytest.approx(10.0)
        assert trace.peak_power() == pytest.approx(50.0)
        assert trace.energy() == pytest.approx(500.0)

    def test_invalid_construction(self):
        with pytest.raises(ContinuumError):
            PowerTrace(np.asarray([0.0, 1.0]), np.asarray([1.0, 2.0]))
        with pytest.raises(ContinuumError):
            PowerTrace(np.asarray([1.0, 0.0]), np.asarray([1.0]))


class TestEnergyReport:
    def test_keys_and_consistency(self, schedule):
        report = energy_report(schedule)
        assert report["energy"] == pytest.approx(schedule.total_energy(), rel=1e-9)
        assert report["edp"] == pytest.approx(
            report["energy"] * report["makespan"]
        )
        assert report["ed2p"] == pytest.approx(
            report["edp"] * report["makespan"]
        )
        assert report["peak_power"] >= report["average_power"]

    def test_tier_breakdown_sums_to_busy(self, schedule):
        report = energy_report(schedule)
        tier_sum = sum(
            v for k, v in report.items() if k.startswith("energy_")
        )
        assert tier_sum == pytest.approx(schedule.busy_energy(), rel=1e-9)
