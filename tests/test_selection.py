"""Unit tests for the selection matrix."""

import numpy as np
import pytest

from repro.core.selection import SelectionMatrix
from repro.errors import SelectionError


@pytest.fixture
def small():
    matrix = np.array(
        [
            [True, False, True],
            [False, False, False],
            [True, True, False],
        ]
    )
    return SelectionMatrix(["t1", "t2", "t3"], ["a1", "a2", "a3"], matrix)


class TestConstruction:
    def test_shape_mismatch(self):
        with pytest.raises(SelectionError):
            SelectionMatrix(["t1"], ["a1", "a2"], np.zeros((2, 2), dtype=bool))

    def test_duplicate_tools(self):
        with pytest.raises(SelectionError):
            SelectionMatrix(["t", "t"], ["a"], np.zeros((2, 1), dtype=bool))

    def test_duplicate_applications(self):
        with pytest.raises(SelectionError):
            SelectionMatrix(["t"], ["a", "a"], np.zeros((1, 2), dtype=bool))

    def test_matrix_copied_and_readonly(self, small):
        with pytest.raises(ValueError):
            small.matrix[0, 0] = False

    def test_from_votes(self):
        sm = SelectionMatrix.from_votes(
            ["t1", "t2"], ["a1"], [("a1", "t2"), ("a1", "t2")]
        )
        assert sm.total_selections == 1
        assert sm.is_selected("t2", "a1")

    def test_from_votes_unknown_key(self):
        with pytest.raises(SelectionError):
            SelectionMatrix.from_votes(["t1"], ["a1"], [("a1", "ghost")])

    def test_from_catalogs_row_order_is_table1_order(self, tools, applications, scheme, selection):
        first_rows = selection.tool_keys[:3]
        assert first_rows == ("bookedslurm", "ics", "jupyter-workflow")
        assert selection.application_keys[0] == "software-heritage-compression"


class TestAccessors:
    def test_is_selected(self, small):
        assert small.is_selected("t1", "a1")
        assert not small.is_selected("t2", "a1")

    def test_is_selected_unknown(self, small):
        with pytest.raises(SelectionError):
            small.is_selected("ghost", "a1")

    def test_tools_of(self, small):
        assert small.tools_of("a1") == ("t1", "t3")
        with pytest.raises(SelectionError):
            small.tools_of("ghost")

    def test_applications_of(self, small):
        assert small.applications_of("t3") == ("a1", "a2")
        assert small.applications_of("t2") == ()

    def test_total(self, small):
        assert small.total_selections == 4


class TestMarginals:
    def test_votes_per_tool(self, small):
        votes = small.votes_per_tool()
        assert votes.to_dict() == {"t1": 2, "t2": 0, "t3": 2}

    def test_selections_per_application(self, small):
        per_app = small.selections_per_application()
        assert per_app.to_dict() == {"a1": 2, "a2": 1, "a3": 1}

    def test_votes_per_direction_matches_fig4(self, selection, tools, scheme):
        votes = selection.votes_per_direction(tools, scheme)
        assert votes.to_dict() == {
            "interactive-computing": 4,
            "orchestration": 11,
            "energy-efficiency": 1,
            "performance-portability": 6,
            "big-data-management": 6,
        }


class TestAgreement:
    def test_identity_agreement(self, small):
        scores = small.agreement(small)
        assert scores["accuracy"] == 1.0
        assert scores["f1"] == 1.0
        assert scores["jaccard"] == 1.0

    def test_disjoint_predictions(self, small):
        inverted = SelectionMatrix(
            small.tool_keys, small.application_keys, ~small.matrix
        )
        scores = small.agreement(inverted)
        assert scores["precision"] == 0.0
        assert scores["recall"] == 0.0
        assert scores["f1"] == 0.0

    def test_mismatched_keys_rejected(self, small):
        other = SelectionMatrix(["x"], ["a1"], np.zeros((1, 1), dtype=bool))
        with pytest.raises(SelectionError):
            small.agreement(other)

    def test_partial_overlap(self, small):
        predicted = np.array(
            [
                [True, False, False],
                [False, False, False],
                [True, True, True],
            ]
        )
        scores = small.agreement(
            SelectionMatrix(small.tool_keys, small.application_keys, predicted)
        )
        # tp=3, fp=1, fn=1
        assert scores["precision"] == pytest.approx(0.75)
        assert scores["recall"] == pytest.approx(0.75)
        assert scores["jaccard"] == pytest.approx(3 / 5)


class TestEquality:
    def test_equal_and_hash(self, small):
        clone = SelectionMatrix(
            small.tool_keys, small.application_keys, small.matrix
        )
        assert small == clone
        assert hash(small) == hash(clone)

    def test_not_equal_different_cells(self, small):
        other = SelectionMatrix(
            small.tool_keys, small.application_keys, ~small.matrix
        )
        assert small != other
