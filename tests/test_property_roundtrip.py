"""Property-based round-trip tests for serialization layers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.selection import SelectionMatrix
from repro.corpus.bibtex import publications_from_bibtex, to_bibtex
from repro.corpus.publication import Publication
from repro.io.csvio import (
    frequency_from_csv,
    frequency_to_csv,
    selection_from_csv,
    selection_to_csv,
)
from repro.stats.frequency import FrequencyTable

# Safe text for titles/venues: printable, no TeX-special or control chars.
safe_text = st.text(
    alphabet=st.characters(
        whitelist_categories=("Lu", "Ll", "Nd"), whitelist_characters=" -:"
    ),
    min_size=1,
    max_size=40,
).map(lambda s: " ".join(s.split())).filter(bool)

author = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyzABCDEFGH", min_size=2, max_size=12
)

publications = st.builds(
    Publication,
    key=st.from_regex(r"[a-z][a-z0-9]{1,10}", fullmatch=True),
    title=safe_text,
    authors=st.lists(author, max_size=3).map(tuple),
    year=st.one_of(st.none(), st.integers(min_value=1950, max_value=2030)),
    venue=st.one_of(st.just(""), safe_text),
    abstract=st.one_of(st.just(""), safe_text),
    doi=st.one_of(st.just(""), st.from_regex(r"10\.[0-9]{4}/[a-z0-9]{1,8}",
                                             fullmatch=True)),
    kind=st.sampled_from(["article", "inproceedings", "misc"]),
)


class TestBibtexRoundtrip:
    @given(st.lists(publications, max_size=5,
                    unique_by=lambda p: p.key))
    @settings(max_examples=60, deadline=None)
    def test_core_fields_survive(self, pubs):
        restored = publications_from_bibtex(to_bibtex(pubs))
        assert len(restored) == len(pubs)
        for original, back in zip(pubs, restored):
            assert back.key == original.key
            assert back.title == original.title
            assert back.year == original.year
            assert back.doi == original.doi
            # Authors survive when present (joined with " and ").
            assert back.authors == original.authors


frequency_tables = st.dictionaries(
    st.from_regex(r"[a-z][a-z0-9-]{0,12}", fullmatch=True),
    st.integers(min_value=0, max_value=10_000),
    min_size=1,
    max_size=10,
).map(FrequencyTable)


class TestCsvRoundtrip:
    @given(frequency_tables)
    def test_frequency(self, table):
        assert frequency_from_csv(frequency_to_csv(table)) == table

    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_selection(self, n_tools, n_apps, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.random((n_tools, n_apps)) < 0.4
        selection = SelectionMatrix(
            [f"t{i}" for i in range(n_tools)],
            [f"a{j}" for j in range(n_apps)],
            matrix,
        )
        assert selection_from_csv(selection_to_csv(selection)) == selection


class TestEcosystemJsonProperty:
    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=15, deadline=None)
    def test_synthetic_ecosystems_roundtrip(self, seed):
        from repro.data.synthetic import synthetic_ecosystem
        from repro.io.jsonio import ecosystem_from_dict, ecosystem_to_dict

        ecosystem = synthetic_ecosystem(
            n_institutions=3, n_tools=6, n_applications=3, seed=seed
        )
        document = ecosystem_to_dict(*ecosystem)
        inst, tools, apps, scheme = ecosystem_from_dict(document)
        assert tools.keys == ecosystem[1].keys
        for key in tools.keys:
            assert tools[key] == ecosystem[1][key]
