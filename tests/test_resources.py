"""Unit tests for the continuum resource model."""

import numpy as np
import pytest

from repro.continuum.resources import (
    Continuum,
    Resource,
    ResourceKind,
    default_continuum,
)
from repro.errors import ContinuumError, ValidationError


def _resource(key="r", kind=ResourceKind.CLOUD, speed=100.0, **kwargs):
    return Resource(key, kind, speed, **kwargs)


class TestResource:
    def test_execution_time(self):
        assert _resource(speed=50.0).execution_time(100.0) == pytest.approx(2.0)

    def test_busy_energy(self):
        r = _resource(busy_power=200.0)
        assert r.busy_energy(3.0) == pytest.approx(600.0)

    def test_supports(self):
        r = _resource(capabilities={"gpu", "mpi"})
        assert r.supports(frozenset({"gpu"}))
        assert not r.supports(frozenset({"fpga"}))
        assert r.supports(frozenset())

    def test_validation(self):
        with pytest.raises(ValidationError):
            _resource(speed=0.0)
        with pytest.raises(ValidationError):
            Resource("r", ResourceKind.EDGE, 1.0, idle_power=100.0,
                     busy_power=50.0)
        with pytest.raises(ValidationError):
            _resource(carbon_intensity=0.0)
        with pytest.raises(ValidationError):
            _resource().execution_time(-1.0)


class TestContinuum:
    @pytest.fixture
    def continuum(self):
        return Continuum(
            [_resource("a", speed=10.0), _resource("b", speed=20.0)],
            default_bandwidth=2.0,
            default_latency=0.5,
        )

    def test_duplicate_resource(self):
        with pytest.raises(ContinuumError):
            Continuum([_resource("a"), _resource("a")])

    def test_empty_rejected(self):
        with pytest.raises(ContinuumError):
            Continuum([])

    def test_lookup(self, continuum):
        assert continuum["a"].speed == 10.0
        with pytest.raises(ContinuumError):
            continuum["ghost"]

    def test_vector_views(self, continuum):
        np.testing.assert_allclose(continuum.speeds, [10.0, 20.0])
        assert continuum.bandwidth.shape == (2, 2)
        assert np.isinf(continuum.bandwidth[0, 0])
        assert continuum.latency[1, 1] == 0.0

    def test_transfer_time(self, continuum):
        # latency 0.5 + 4 units / 2 per s = 2.5
        assert continuum.transfer_time(4.0, "a", "b") == pytest.approx(2.5)
        assert continuum.transfer_time(4.0, "a", "a") == 0.0
        assert continuum.transfer_time(0.0, "a", "b") == pytest.approx(0.5)

    def test_transfer_validation(self, continuum):
        with pytest.raises(ContinuumError):
            continuum.transfer_time(-1.0, "a", "b")

    def test_matrix_shape_validation(self):
        with pytest.raises(ContinuumError):
            Continuum([_resource("a")], bandwidth=np.ones((2, 2)))

    def test_nonpositive_bandwidth_rejected(self):
        with pytest.raises(ContinuumError):
            Continuum(
                [_resource("a"), _resource("b")],
                bandwidth=np.zeros((2, 2)),
            )

    def test_by_kind(self):
        continuum = default_continuum(n_hpc=1, n_cloud=2, n_edge=3, seed=0)
        assert len(continuum.by_kind(ResourceKind.EDGE)) == 3
        assert len(continuum.by_kind(ResourceKind.HPC)) == 1


class TestDefaultContinuum:
    def test_deterministic(self):
        a = default_continuum(seed=5)
        b = default_continuum(seed=5)
        np.testing.assert_allclose(a.speeds, b.speeds)
        np.testing.assert_allclose(a.bandwidth, b.bandwidth)

    def test_tier_ordering(self):
        continuum = default_continuum(seed=0)
        hpc = continuum.by_kind(ResourceKind.HPC)
        edge = continuum.by_kind(ResourceKind.EDGE)
        assert min(r.speed for r in hpc) > max(r.speed for r in edge)
        assert min(r.busy_power for r in hpc) > max(r.busy_power for r in edge)

    def test_symmetric_links(self):
        continuum = default_continuum(seed=3)
        np.testing.assert_allclose(continuum.latency, continuum.latency.T)

    def test_needs_a_resource(self):
        with pytest.raises(ContinuumError):
            default_continuum(n_hpc=0, n_cloud=0, n_edge=0)
