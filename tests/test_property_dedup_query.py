"""Property-based tests for deduplication and the query engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.dedup import find_duplicates, merge_cluster
from repro.corpus.publication import Publication
from repro.corpus.query import Query
from repro.errors import QueryError

words = st.sampled_from(
    "workflow orchestration scheduling energy cloud edge hpc data stream "
    "placement migration analytics portable kernel notebook".split()
)
titles = st.lists(words, min_size=3, max_size=8, unique=True).map(" ".join)


class TestDedupProperties:
    @given(titles, st.integers(min_value=1990, max_value=2024),
           st.sampled_from(["upper", "truncate", "year"]))
    @settings(max_examples=60)
    def test_injected_mutation_always_detected(self, title, year, mutation):
        original = Publication(key="orig", title=title + ": extra subtitle",
                               year=year)
        if mutation == "upper":
            dup_title, dup_year = original.title.upper(), year
        elif mutation == "truncate":
            dup_title, dup_year = original.title.split(":")[0], year
        else:
            dup_title, dup_year = original.title, year + 1
        duplicate = Publication(key="dup", title=dup_title, year=dup_year)
        clusters = find_duplicates([original, duplicate])
        assert len(clusters) == 1
        assert {p.key for p in clusters[0]} == {"orig", "dup"}

    @given(st.lists(titles, min_size=2, max_size=8, unique=True))
    @settings(max_examples=40)
    def test_merge_preserves_one_record_per_cluster(self, unique_titles):
        pubs = [
            Publication(key=f"p{i}", title=f"{title} study number {i}",
                        year=2000 + i)
            for i, title in enumerate(unique_titles)
        ]
        clusters = find_duplicates(pubs)
        for cluster in clusters:
            merged = merge_cluster(cluster)
            assert merged.key in {p.key for p in cluster}

    @given(titles)
    def test_self_duplicate_found(self, title):
        a = Publication(key="a", title=title, year=2020)
        b = Publication(key="b", title=title, year=2020)
        assert len(find_duplicates([a, b])) == 1


class TestQueryProperties:
    @given(words)
    def test_term_matches_itself(self, word):
        assert Query(word).matches_text(f"a study of {word} systems")

    @given(words, words)
    def test_and_implies_both(self, a, b):
        query = Query(f"{a} AND {b}")
        text_both = f"{a} meets {b}"
        assert query.matches_text(text_both)
        if a != b:
            assert not query.matches_text(f"only {a} here")

    @given(words, words)
    def test_or_superset_of_and(self, a, b):
        texts = [f"{a} only", f"{b} only", f"{a} and {b}", "neither thing"]
        and_hits = [t for t in texts if Query(f"{a} AND {b}").matches_text(t)]
        or_hits = [t for t in texts if Query(f"{a} OR {b}").matches_text(t)]
        assert set(and_hits) <= set(or_hits)

    @given(words)
    def test_double_negation_is_identity(self, word):
        texts = [f"{word} present", "absent entirely"]
        plain = [t for t in texts if Query(word).matches_text(t)]
        double = [t for t in texts
                  if Query(f"NOT NOT {word}").matches_text(t)]
        assert plain == double

    @given(words)
    def test_demorgan(self, word):
        other = "zzz"
        for text in (f"{word} here", f"{other} here", f"{word} {other}", "none"):
            lhs = Query(f"NOT ({word} OR {other})").matches_text(text)
            rhs = Query(f"NOT {word} AND NOT {other}").matches_text(text)
            assert lhs == rhs
