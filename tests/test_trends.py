"""Unit tests for temporal trend analysis and the line chart."""

import xml.dom.minidom

import pytest

from repro.corpus.publication import Publication
from repro.corpus.trends import (
    category_year_matrix,
    cumulative_series,
    fit_linear_trend,
    yearly_series,
)
from repro.data.bibliography import paper_bibliography
from repro.errors import RenderError, StatsError
from repro.stats.frequency import FrequencyTable
from repro.viz.lines import line_chart


def _pub(key, year, title="T"):
    return Publication(key=key, title=title, year=year)


class TestYearlySeries:
    def test_zero_filled_range(self):
        series = yearly_series([_pub("a", 2019), _pub("b", 2021),
                                _pub("c", 2021)])
        assert series.to_dict() == {2019: 1, 2020: 0, 2021: 2}

    def test_explicit_bounds_clip(self):
        series = yearly_series(
            [_pub("a", 2000), _pub("b", 2020)], first=2019, last=2021
        )
        assert series.to_dict() == {2019: 0, 2020: 1, 2021: 0}

    def test_yearless_skipped(self):
        series = yearly_series(
            [_pub("a", 2020), Publication(key="b", title="T")]
        )
        assert series.total == 1

    def test_no_years_rejected(self):
        with pytest.raises(StatsError):
            yearly_series([Publication(key="a", title="T")])

    def test_empty_range_rejected(self):
        with pytest.raises(StatsError):
            yearly_series([_pub("a", 2020)], first=2021, last=2020)

    def test_paper_bibliography_spans_2000_2023(self):
        series = yearly_series(paper_bibliography())
        assert series.labels[0] == 2000
        assert series.labels[-1] == 2023
        assert series.total == 49


class TestCumulative:
    def test_monotone_and_total(self):
        series = yearly_series([_pub("a", 2019), _pub("b", 2021)])
        cumulative = cumulative_series(series)
        values = list(cumulative.values)
        assert values == sorted(values)
        assert values[-1] == series.total


class TestCategoryYearMatrix:
    def test_shape_and_counts(self):
        pubs = [_pub("a", 2020, "workflow x"), _pub("b", 2020, "energy y"),
                _pub("c", 2021, "workflow z")]
        matrix, cats, years = category_year_matrix(
            pubs,
            lambda p: "wf" if "workflow" in p.title else "en",
            ["wf", "en"],
        )
        assert matrix.shape == (2, 2)
        assert years == (2020, 2021)
        assert matrix[0, 0] == 1 and matrix[0, 1] == 1 and matrix[1, 0] == 1

    def test_category_outside_order_rejected(self):
        with pytest.raises(StatsError):
            category_year_matrix(
                [_pub("a", 2020)], lambda p: "ghost", ["known"]
            )


class TestTrendFit:
    def test_perfect_linear(self):
        series = FrequencyTable({2019: 2, 2020: 4, 2021: 6, 2022: 8})
        fit = fit_linear_trend(series)
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(8.0)  # count at series end
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.predict(2) == pytest.approx(12.0)

    def test_flat_series(self):
        fit = fit_linear_trend(FrequencyTable({2019: 5, 2020: 5, 2021: 5}))
        assert fit.slope == pytest.approx(0.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_too_short(self):
        with pytest.raises(StatsError):
            fit_linear_trend(FrequencyTable({2020: 3}))

    def test_bibliography_trend_is_growing(self):
        series = yearly_series(paper_bibliography(), first=2014, last=2023)
        fit = fit_linear_trend(series)
        assert fit.slope > 0  # recent workflow research accelerates


class TestLineChart:
    def test_renders_wellformed(self):
        series = yearly_series([_pub(f"p{i}", 2015 + i % 6)
                                for i in range(20)])
        doc = line_chart(
            {"per year": series, "cumulative": cumulative_series(series)},
            title="Trend", x_label="year", y_label="publications",
        )
        xml.dom.minidom.parseString(doc.render())

    def test_needs_numeric_labels(self):
        with pytest.raises(RenderError):
            line_chart({"s": FrequencyTable({"a": 1, "b": 2})})

    def test_needs_two_points(self):
        with pytest.raises(RenderError):
            line_chart({"s": FrequencyTable({2020: 1})})

    def test_mismatched_series(self):
        with pytest.raises(RenderError):
            line_chart({
                "a": FrequencyTable({2020: 1, 2021: 2}),
                "b": FrequencyTable({2019: 1, 2020: 2}),
            })

    def test_empty(self):
        with pytest.raises(RenderError):
            line_chart({})
