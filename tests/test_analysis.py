"""Unit tests for the analysis layer (Figs. 2-4 data, supply vs demand)."""

import pytest

from repro.core.analysis import (
    compare_supply_demand,
    coverage_histogram,
    demand_distribution,
    institution_profile,
    supply_distribution,
)
from repro.core.catalog import ToolCatalog
from repro.core.entities import Tool
from repro.core.selection import SelectionMatrix
from repro.core.taxonomy import workflow_directions
from repro.errors import ValidationError


class TestSupplyDistribution:
    def test_matches_fig2(self, tools, scheme):
        table = supply_distribution(tools, scheme)
        assert tuple(table.values) == (3, 7, 3, 6, 6)
        assert table.labels == scheme.keys


class TestCoverageHistogram:
    def test_matches_fig3(self, tools, scheme):
        table = coverage_histogram(tools, scheme)
        assert table.to_dict() == {1: 5, 2: 2, 3: 1, 4: 1, 5: 0}
        assert table.total == 9  # institutions

    def test_empty_catalog_rejected(self, scheme):
        with pytest.raises(ValidationError):
            coverage_histogram(ToolCatalog(), scheme)

    def test_single_institution_single_direction(self, scheme):
        catalog = ToolCatalog([Tool("t", "T", "inst", "orchestration")])
        table = coverage_histogram(catalog, scheme)
        assert table[1] == 1
        assert table.total == 1


class TestDemandDistribution:
    def test_matches_fig4(self, selection, tools, scheme):
        table = demand_distribution(selection, tools, scheme)
        assert tuple(table.values) == (4, 11, 1, 6, 6)
        assert table.total == 28


class TestCompareSupplyDemand:
    @pytest.fixture(scope="class")
    def comparison(self, tools, applications, scheme):
        return compare_supply_demand(
            tools, applications, scheme, seed=7, n_permutations=2000
        )

    def test_orientation(self, comparison):
        assert comparison.most_demanded() == "orchestration"
        assert comparison.least_demanded() == "energy-efficiency"

    def test_demand_less_even_than_supply(self, comparison):
        assert (
            comparison.demand_evenness["shannon_evenness"]
            < comparison.supply_evenness["shannon_evenness"]
        )

    def test_ratios_orientation(self, comparison):
        # Orchestration more demanded than supplied; energy the reverse.
        assert comparison.demand_supply_ratio["orchestration"] > 1.0
        assert comparison.demand_supply_ratio["energy-efficiency"] < 0.5

    def test_tvd_positive_and_bounded(self, comparison):
        assert 0.0 < comparison.tvd < 1.0

    def test_permutation_p_value_valid(self, comparison):
        assert 0.0 < comparison.permutation.p_value <= 1.0

    def test_deterministic_under_seed(self, tools, applications, scheme):
        a = compare_supply_demand(tools, applications, scheme, seed=5,
                                  n_permutations=500)
        b = compare_supply_demand(tools, applications, scheme, seed=5,
                                  n_permutations=500)
        assert a.permutation.p_value == b.permutation.p_value


class TestInstitutionProfile:
    def test_profiles_cover_full_scheme(self, tools, scheme):
        profiles = institution_profile(tools, scheme)
        assert set(profiles) == set(tools.institutions())
        for table in profiles.values():
            assert table.labels == scheme.keys

    def test_unipi_profile(self, tools, scheme):
        profiles = institution_profile(tools, scheme)
        unipi = profiles["unipi"]
        assert unipi["performance-portability"] == 4
        assert unipi["orchestration"] == 1
        assert unipi.total == 7
