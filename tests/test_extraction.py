"""Unit tests for data extraction and classifier cross-validation."""

import pytest

from repro.core.extraction import (
    cross_validate_classifier,
    extract_tool_candidates,
)
from repro.core.taxonomy import workflow_directions
from repro.corpus.publication import Publication
from repro.data.synthetic import synthetic_ecosystem
from repro.errors import ValidationError


@pytest.fixture(scope="module")
def directions():
    return workflow_directions()


def _pub(key, title, abstract=""):
    return Publication(key=key, title=title, abstract=abstract, year=2022)


class TestExtraction:
    def test_drafts_one_candidate_per_publication(self, directions):
        pubs = [
            _pub("p1", "A TOSCA orchestrator for multi-cloud deployment",
                 "Deploys containers via Kubernetes across federated clouds."),
            _pub("p2", "Energy-aware placement of virtual machines",
                 "Minimizing the power footprint of cloud platforms."),
        ]
        candidates = extract_tool_candidates(pubs, directions)
        assert len(candidates) == 2
        assert candidates[0].tool.primary_direction == "orchestration"
        assert candidates[1].tool.primary_direction == "energy-efficiency"
        assert candidates[0].source == "p1"

    def test_description_prefers_abstract(self, directions):
        pub = _pub("p", "Short title about workflow orchestration",
                   "A much longer abstract describing the system.")
        (candidate,) = extract_tool_candidates([pub], directions)
        assert candidate.tool.description == pub.abstract

    def test_key_collision_suffixed(self, directions):
        pubs = [
            _pub("p1", "Workflow orchestration"),
            _pub("p2", "Workflow orchestration"),
        ]
        keys = [
            c.tool.key for c in extract_tool_candidates(pubs, directions)
        ]
        assert len(set(keys)) == 2
        assert keys[1].endswith("-2")

    def test_low_confidence_flagged(self, directions):
        vague = _pub("p", "Assorted considerations on computing matters")
        (candidate,) = extract_tool_candidates(
            [vague], directions, review_threshold=0.9
        )
        assert candidate.needs_review

    def test_high_confidence_not_flagged(self, directions):
        sharp = _pub(
            "p", "TOSCA orchestration of Kubernetes deployment and placement"
        )
        (candidate,) = extract_tool_candidates(
            [sharp], directions, review_threshold=0.5
        )
        assert not candidate.needs_review

    def test_threshold_validation(self, directions):
        with pytest.raises(ValidationError):
            extract_tool_candidates([], directions, review_threshold=0.0)


class TestCrossValidation:
    def test_synthetic_descriptions_generalize(self, directions):
        _, tools, _, scheme = synthetic_ecosystem(n_tools=120, seed=6)
        texts = [t.description for t in tools]
        labels = [t.primary_direction for t in tools]
        stats = cross_validate_classifier(texts, labels, scheme, seed=1)
        assert stats["mean_accuracy"] > 0.7
        assert stats["min_accuracy"] <= stats["mean_accuracy"] <= stats["max_accuracy"]
        assert stats["folds"] == 5.0

    def test_icsc_out_of_sample_accuracy(self, tools, scheme):
        # The honest (out-of-sample) version of the replication's in-sample
        # 0.96-1.00 numbers: 5-fold CV over 25 short texts is harder.
        texts = [t.description for t in tools]
        labels = [t.primary_direction for t in tools]
        stats = cross_validate_classifier(texts, labels, scheme, seed=0)
        assert stats["mean_accuracy"] > 0.6

    def test_deterministic_under_seed(self, tools, scheme):
        texts = [t.description for t in tools]
        labels = [t.primary_direction for t in tools]
        a = cross_validate_classifier(texts, labels, scheme, seed=3)
        b = cross_validate_classifier(texts, labels, scheme, seed=3)
        assert a == b

    def test_validation(self, directions):
        with pytest.raises(ValidationError):
            cross_validate_classifier(["a"], ["orchestration", "extra"],
                                      directions)
        with pytest.raises(ValidationError):
            cross_validate_classifier(
                ["a", "b"], ["orchestration", "orchestration"],
                directions, folds=1,
            )
        with pytest.raises(ValidationError):
            cross_validate_classifier(
                ["a", "b"], ["orchestration", "nope"], directions, folds=2,
            )
        with pytest.raises(ValidationError):
            cross_validate_classifier(
                ["a", "b"], ["orchestration", "orchestration"],
                directions, folds=5,
            )
