"""Unit tests for the entity model."""

import pytest

from repro.core.entities import (
    Application,
    Institution,
    InstitutionKind,
    Reference,
    Tool,
    slugify,
)
from repro.errors import ValidationError


class TestSlugify:
    def test_basic(self):
        assert slugify("Jupyter Workflow") == "jupyter-workflow"

    def test_plus_sign(self):
        assert slugify("BDMaaS+") == "bdmaas-plus"

    def test_dots_and_punctuation(self):
        assert slugify("Lapegna et al.") == "lapegna-et-al"

    def test_collapses_runs(self):
        assert slugify("a   --  b") == "a-b"

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            slugify("!!!")


class TestInstitution:
    def test_defaults_short_name_from_key(self):
        inst = Institution("unito", "University of Turin")
        assert inst.short_name == "UNITO"
        assert inst.kind is InstitutionKind.UNIVERSITY

    def test_explicit_fields(self):
        inst = Institution(
            "cineca", "CINECA", "CINECA", InstitutionKind.COMPUTING_CENTRE, "Bologna"
        )
        assert inst.kind is InstitutionKind.COMPUTING_CENTRE
        assert inst.city == "Bologna"

    def test_rejects_bad_key(self):
        with pytest.raises(ValidationError):
            Institution("Uni To", "University of Turin")

    def test_rejects_empty_name(self):
        with pytest.raises(ValidationError):
            Institution("unito", "")

    def test_frozen(self):
        inst = Institution("unito", "University of Turin")
        with pytest.raises(AttributeError):
            inst.name = "other"


class TestReference:
    def test_roundtrip_fields(self):
        ref = Reference("Someone, A Paper", 2021, doi="10.1/x")
        assert ref.year == 2021
        assert ref.doi == "10.1/x"

    def test_rejects_empty_citation(self):
        with pytest.raises(ValidationError):
            Reference("")

    def test_rejects_implausible_year(self):
        with pytest.raises(ValidationError):
            Reference("x", 1800)

    def test_year_optional(self):
        assert Reference("x").year is None


class TestTool:
    def test_directions_property(self):
        tool = Tool("t", "T", "inst", "orchestration",
                    secondary_directions=("big-data-management",))
        assert tool.directions == ("orchestration", "big-data-management")

    def test_rejects_primary_in_secondary(self):
        with pytest.raises(ValidationError):
            Tool("t", "T", "inst", "orchestration",
                 secondary_directions=("orchestration",))

    def test_rejects_missing_primary(self):
        with pytest.raises(ValidationError):
            Tool("t", "T", "inst", "")

    def test_rejects_bad_institution_key(self):
        with pytest.raises(ValidationError):
            Tool("t", "T", "Bad Key", "orchestration")

    def test_secondary_normalized_to_tuple(self):
        tool = Tool("t", "T", "inst", "orchestration",
                    secondary_directions=["energy-efficiency"])
        assert isinstance(tool.secondary_directions, tuple)


class TestApplication:
    def test_section_order(self):
        app = Application("a", "A", "3.10")
        assert app.section_order == (3, 10)

    def test_section_ordering_is_numeric(self):
        a2 = Application("a2", "A", "3.2")
        a10 = Application("a10", "A", "3.10")
        assert a2.section_order < a10.section_order

    def test_rejects_bad_section(self):
        with pytest.raises(ValidationError):
            Application("a", "A", "three.one")

    def test_rejects_duplicate_selection(self):
        with pytest.raises(ValidationError):
            Application("a", "A", "3.1", selected_tools=("x", "x"))

    def test_rejects_bad_provider_key(self):
        with pytest.raises(ValidationError):
            Application("a", "A", "3.1", providers=("Bad Provider",))

    def test_empty_selection_allowed(self):
        assert Application("a", "A", "3.1").selected_tools == ()
