"""Unit tests for rank-agreement measures."""

import pytest

from repro.errors import StatsError
from repro.stats.correlation import (
    align_tables,
    kendall_tau,
    rank_biased_overlap,
    spearman_rho,
)
from repro.stats.frequency import FrequencyTable


class TestAlignTables:
    def test_aligns_on_first_order(self):
        a = FrequencyTable({"x": 1, "y": 2})
        b = FrequencyTable({"y": 20, "x": 10})
        va, vb, labels = align_tables(a, b)
        assert labels == ("x", "y")
        assert list(vb) == [10, 20]

    def test_category_mismatch(self):
        a = FrequencyTable({"x": 1})
        b = FrequencyTable({"y": 1})
        with pytest.raises(StatsError):
            align_tables(a, b)


class TestRankCorrelation:
    def test_perfect_spearman(self):
        rho, _ = spearman_rho([1, 2, 3, 4], [10, 20, 30, 40])
        assert rho == pytest.approx(1.0)

    def test_inverted_spearman(self):
        rho, _ = spearman_rho([1, 2, 3, 4], [4, 3, 2, 1])
        assert rho == pytest.approx(-1.0)

    def test_kendall_perfect(self):
        tau, _ = kendall_tau([1, 2, 3], [2, 4, 9])
        assert tau == pytest.approx(1.0)

    def test_supply_demand_positively_correlated(self):
        # Fig. 2 vs Fig. 4: same broad ordering.
        rho, _ = spearman_rho([3, 7, 3, 6, 6], [4, 11, 1, 6, 6])
        assert rho > 0.5

    @pytest.mark.parametrize("func", [spearman_rho, kendall_tau])
    def test_validation(self, func):
        with pytest.raises(StatsError):
            func([1, 2], [1, 2])  # too short
        with pytest.raises(StatsError):
            func([1, 2, 3], [1, 2])  # misaligned


class TestRankBiasedOverlap:
    def test_identical_rankings(self):
        assert rank_biased_overlap(["a", "b", "c"], ["a", "b", "c"]) == pytest.approx(1.0)

    def test_reversed_lower_than_identical(self):
        same = rank_biased_overlap(list("abcde"), list("abcde"))
        reverse = rank_biased_overlap(list("abcde"), list("edcba"))
        assert reverse < same

    def test_top_weighted(self):
        # Swapping the tail hurts less than swapping the head.
        tail_swap = rank_biased_overlap(list("abcde"), list("abced"), p=0.7)
        head_swap = rank_biased_overlap(list("abcde"), list("bacde"), p=0.7)
        assert tail_swap > head_swap

    def test_bounds(self):
        value = rank_biased_overlap(list("abcd"), list("dcba"))
        assert 0.0 <= value <= 1.0

    def test_validation(self):
        with pytest.raises(StatsError):
            rank_biased_overlap(["a"], ["a"], p=1.0)
        with pytest.raises(StatsError):
            rank_biased_overlap(["a", "a"], ["a", "b"])
        with pytest.raises(StatsError):
            rank_biased_overlap(["a", "b"], ["a", "c"])
        with pytest.raises(StatsError):
            rank_biased_overlap(["a"], ["a", "b"])
        with pytest.raises(StatsError):
            rank_biased_overlap([], [])
