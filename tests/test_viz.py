"""Unit tests for the visualization substrate (SVG + ASCII)."""

import math
import xml.dom.minidom

import pytest

from repro.errors import RenderError
from repro.stats.frequency import FrequencyTable
from repro.viz.ascii import ascii_distribution, ascii_histogram, ascii_matrix
from repro.viz.bars import bar_chart, grouped_bar_chart
from repro.viz.matrix import bubble_plot, selection_grid
from repro.viz.palette import (
    CATEGORICAL,
    direction_colors,
    sequential,
    text_contrast,
)
from repro.viz.pie import pie_chart
from repro.viz.svg import SvgDocument, arc_path, polar_point


def assert_well_formed(svg_text: str) -> None:
    xml.dom.minidom.parseString(svg_text)


class TestSvgDocument:
    def test_render_is_well_formed(self):
        doc = SvgDocument(100, 60)
        doc.rect(0, 0, 100, 60, fill="#fff")
        doc.line(0, 0, 100, 60)
        doc.circle(50, 30, 10, fill="#000")
        doc.text(50, 30, "hi & <bye>", anchor="middle")
        assert_well_formed(doc.render())

    def test_escaping(self):
        doc = SvgDocument(10, 10)
        doc.text(0, 0, "<&>")
        rendered = doc.render()
        assert "&lt;&amp;&gt;" in rendered

    def test_invalid_dimensions(self):
        with pytest.raises(RenderError):
            SvgDocument(0, 10)

    def test_invalid_anchor(self):
        with pytest.raises(RenderError):
            SvgDocument(10, 10).text(0, 0, "x", anchor="center")

    def test_save(self, tmp_path):
        path = tmp_path / "out.svg"
        SvgDocument(10, 10).save(path)
        assert_well_formed(path.read_text())


class TestGeometry:
    def test_polar_point_clock_convention(self):
        x, y = polar_point(0, 0, 1, 0)
        assert (x, y) == pytest.approx((0, -1))  # 12 o'clock
        x, y = polar_point(0, 0, 1, math.pi / 2)
        assert (x, y) == pytest.approx((1, 0))  # 3 o'clock

    def test_arc_path_half_circle(self):
        path = arc_path(0, 0, 10, 0, math.pi)
        assert path.startswith("M 0 0 L")
        assert "A 10 10" in path

    def test_arc_path_full_circle(self):
        path = arc_path(0, 0, 10, 0, 2 * math.pi)
        assert path.count("A") == 2  # two half arcs

    def test_arc_path_validation(self):
        with pytest.raises(RenderError):
            arc_path(0, 0, 10, 1.0, 0.5)


class TestPalette:
    def test_direction_colors_stable(self):
        colors = direction_colors(("a", "b"))
        assert colors["a"] == CATEGORICAL[0]
        assert colors["b"] == CATEGORICAL[1]

    def test_direction_colors_cycles(self):
        keys = tuple(f"k{i}" for i in range(10))
        colors = direction_colors(keys)
        assert colors["k7"] == CATEGORICAL[0]

    def test_sequential_bounds(self):
        assert sequential(0.0) == "#deebf7"
        assert sequential(1.0) == "#08519c"
        with pytest.raises(RenderError):
            sequential(1.5)

    def test_text_contrast(self):
        assert text_contrast("#ffffff") == "#000000"
        assert text_contrast("#000000") == "#ffffff"
        with pytest.raises(RenderError):
            text_contrast("#fff")


class TestCharts:
    @pytest.fixture
    def table(self):
        return FrequencyTable({"a": 3, "b": 7, "c": 0})

    def test_pie_chart(self, table):
        doc = pie_chart(table, title="Pie", show_percentages=True)
        text = doc.render()
        assert_well_formed(text)
        assert "Pie" in text
        assert ">7 (70%)<" in text

    def test_pie_all_zero_rejected(self):
        with pytest.raises(RenderError):
            pie_chart(FrequencyTable({"a": 0}))

    def test_bar_chart(self, table):
        doc = bar_chart(table, title="Bars", x_label="x", y_label="y")
        text = doc.render()
        assert_well_formed(text)
        assert "Bars" in text

    def test_bar_chart_fig3(self, tools, scheme):
        from repro.core.analysis import coverage_histogram

        doc = bar_chart(coverage_histogram(tools, scheme))
        assert_well_formed(doc.render())

    def test_grouped_bars(self, table):
        other = FrequencyTable({"a": 1, "b": 2, "c": 5})
        doc = grouped_bar_chart({"s1": table, "s2": other}, title="Cmp")
        assert_well_formed(doc.render())

    def test_grouped_bars_mismatched_categories(self, table):
        with pytest.raises(RenderError):
            grouped_bar_chart({"s1": table,
                               "s2": FrequencyTable({"x": 1})})

    def test_grouped_bars_empty(self):
        with pytest.raises(RenderError):
            grouped_bar_chart({})


class TestMatrixPlots:
    def test_selection_grid(self, selection, tools, applications):
        doc = selection_grid(
            selection,
            row_names={t.key: t.name for t in tools},
            col_names={a.key: a.section for a in applications.ordered()},
            row_groups={t.key: t.primary_direction for t in tools},
        )
        text = doc.render()
        assert_well_formed(text)
        assert text.count("✓") == 28

    def test_bubble_plot(self):
        import numpy as np

        doc = bubble_plot(
            np.array([[3, 0], [1, 5]]), ["r1", "r2"], ["c1", "c2"],
            title="Bubbles",
        )
        assert_well_formed(doc.render())

    def test_bubble_plot_validation(self):
        import numpy as np

        with pytest.raises(RenderError):
            bubble_plot(np.zeros((2, 2)), ["a", "b"], ["c", "d"])
        with pytest.raises(RenderError):
            bubble_plot(np.ones((2, 2)), ["a"], ["c", "d"])


class TestAscii:
    def test_distribution(self, tools, scheme):
        from repro.core.analysis import supply_distribution

        text = ascii_distribution(supply_distribution(tools, scheme))
        assert "28.0%" in text  # orchestration share
        assert "█" in text

    def test_distribution_validation(self):
        with pytest.raises(RenderError):
            ascii_distribution(FrequencyTable({"a": 1}), width=2)

    def test_histogram(self, tools, scheme):
        from repro.core.analysis import coverage_histogram

        text = ascii_histogram(coverage_histogram(tools, scheme),
                               x_label="dirs", y_label="insts")
        assert "insts" in text
        assert "5" in text.splitlines()[1]  # peak tick

    def test_matrix(self, selection):
        text = ascii_matrix(selection)
        assert text.count("x") >= 28
