"""Unit tests for the study-flow (PRISMA-style) accounting."""

import xml.dom.minidom

import pytest

from repro.errors import ValidationError
from repro.reporting.prisma import FlowStage, StudyFlow, render_flow_diagram


class TestStudyFlow:
    def test_typical_flow(self):
        flow = StudyFlow("identified", 600)
        flow.narrow("after deduplication", 512, "duplicates")
        flow.narrow("matched query", 49, "off-topic")
        flow.narrow("included", 36, "failed criteria")
        assert flow.initial == 600
        assert flow.final == 36
        assert flow.excluded_total() == 564
        assert flow.retention_rate() == pytest.approx(36 / 600)

    def test_exclusions_rows(self):
        flow = StudyFlow("identified", 100)
        flow.narrow("screened", 40, "irrelevant")
        rows = flow.exclusions()
        assert rows == [("screened", 60, "irrelevant")]

    def test_monotonicity_enforced(self):
        flow = StudyFlow("identified", 10)
        with pytest.raises(ValidationError):
            flow.narrow("grew somehow", 11)

    def test_equal_count_allowed(self):
        flow = StudyFlow("identified", 10)
        flow.narrow("no-op stage", 10)
        assert flow.excluded_total() == 0

    def test_stage_validation(self):
        with pytest.raises(ValidationError):
            FlowStage("", 1)
        with pytest.raises(ValidationError):
            FlowStage("x", -1)

    def test_retention_of_empty_start(self):
        flow = StudyFlow("identified", 0)
        with pytest.raises(ValidationError):
            flow.retention_rate()

    def test_summary_mentions_every_stage(self):
        flow = StudyFlow("identified", 100)
        flow.narrow("included", 25, "screened out")
        text = flow.summary()
        assert "identified: 100" in text
        assert "included: 25" in text
        assert "-75" in text


class TestFlowDiagram:
    def test_renders_wellformed(self):
        flow = StudyFlow("identified", 600)
        flow.narrow("deduplicated", 512, "duplicates")
        flow.narrow("included", 36, "criteria")
        svg = render_flow_diagram(flow).render()
        xml.dom.minidom.parseString(svg)
        assert "n = 600" in svg
        assert "excluded: 476" in svg

    def test_single_stage(self):
        svg = render_flow_diagram(StudyFlow("identified", 5)).render()
        xml.dom.minidom.parseString(svg)
