"""Unit tests for string/set similarity measures."""

import pytest

from repro.errors import ValidationError
from repro.text.similarity import (
    cosine_counts,
    dice,
    jaccard,
    levenshtein,
    normalized_levenshtein,
    token_sort_ratio,
)


def reference_levenshtein(a: str, b: str) -> int:
    previous = list(range(len(b) + 1))
    for i in range(1, len(a) + 1):
        current = [i] + [0] * len(b)
        for j in range(1, len(b) + 1):
            current[j] = min(
                previous[j - 1] + (a[i - 1] != b[j - 1]),
                previous[j] + 1,
                current[j - 1] + 1,
            )
        previous = current
    return previous[len(b)]


class TestLevenshtein:
    def test_classic(self):
        assert levenshtein("kitten", "sitting") == 3

    def test_identity(self):
        assert levenshtein("same", "same") == 0

    def test_empty(self):
        assert levenshtein("", "abc") == 3
        assert levenshtein("abc", "") == 3
        assert levenshtein("", "") == 0

    def test_symmetry(self):
        assert levenshtein("flaw", "lawn") == levenshtein("lawn", "flaw")

    def test_unicode(self):
        assert levenshtein("caffè", "caffe") == 1

    @pytest.mark.parametrize(
        "a,b",
        [
            ("streamflow", "stream flow"),
            ("abcdabcd", "dcba"),
            ("x" * 30, "y" * 10),
            ("workflow", "workflows"),
        ],
    )
    def test_against_reference(self, a, b):
        assert levenshtein(a, b) == reference_levenshtein(a, b)

    def test_normalized_bounds(self):
        assert normalized_levenshtein("abc", "abc") == 0.0
        assert normalized_levenshtein("abc", "xyz") == 1.0
        assert normalized_levenshtein("", "") == 0.0


class TestSetSimilarity:
    def test_jaccard(self):
        assert jaccard({1, 2}, {2, 3}) == pytest.approx(1 / 3)
        assert jaccard(set(), set()) == 1.0
        assert jaccard({1}, set()) == 0.0

    def test_dice(self):
        assert dice({1, 2}, {2, 3}) == pytest.approx(0.5)
        assert dice(set(), set()) == 1.0

    def test_dice_geq_jaccard(self):
        a, b = {1, 2, 3}, {2, 3, 4, 5}
        assert dice(a, b) >= jaccard(a, b)


class TestCosine:
    def test_parallel(self):
        assert cosine_counts([1, 2], [2, 4]) == pytest.approx(1.0)

    def test_orthogonal(self):
        assert cosine_counts([1, 0], [0, 1]) == pytest.approx(0.0)

    def test_zero_vector(self):
        assert cosine_counts([0, 0], [1, 2]) == 0.0

    def test_misaligned(self):
        with pytest.raises(ValidationError):
            cosine_counts([1], [1, 2])


class TestTokenSortRatio:
    def test_reordering_invariant(self):
        assert token_sort_ratio("cloud HPC convergence",
                                "HPC cloud convergence") == pytest.approx(1.0)

    def test_dissimilar(self):
        assert token_sort_ratio("alpha beta", "gamma delta") < 0.5
