"""Unit tests for keywording: discriminative terms, k-means, scheme induction."""

import numpy as np
import pytest

from repro.core.keywording import (
    adjusted_rand_index,
    discriminative_keywords,
    induce_scheme,
    kmeans,
)
from repro.data.synthetic import synthetic_ecosystem
from repro.errors import ClassificationError, ValidationError


class TestDiscriminativeKeywords:
    def test_icsc_keywords_are_on_topic(self, tools):
        groups: dict[str, list[str]] = {}
        for tool in tools:
            groups.setdefault(tool.primary_direction, []).append(
                tool.description
            )
        keywords = discriminative_keywords(groups, top_k=6)
        assert "energi" in keywords["energy-efficiency"]
        assert "orchestr" in keywords["orchestration"]
        assert any(k.startswith("jupyt") or k == "interact"
                   for k in keywords["interactive-computing"])

    def test_top_k_respected(self, tools):
        groups: dict[str, list[str]] = {}
        for tool in tools:
            groups.setdefault(tool.primary_direction, []).append(
                tool.description
            )
        keywords = discriminative_keywords(groups, top_k=3)
        assert all(len(v) <= 3 for v in keywords.values())

    def test_validation(self):
        with pytest.raises(ValidationError):
            discriminative_keywords({})
        with pytest.raises(ValidationError):
            discriminative_keywords({"a": []})
        with pytest.raises(ValidationError):
            discriminative_keywords({"a": ["text"]}, top_k=0)


class TestKmeans:
    def test_separable_clusters_recovered(self):
        rng = np.random.default_rng(0)
        # Two well-separated direction bundles on the unit sphere.
        a = rng.normal([5, 0, 0], 0.1, size=(30, 3))
        b = rng.normal([0, 5, 0], 0.1, size=(30, 3))
        data = np.vstack([a, b])
        labels, centroids, inertia = kmeans(data, 2, seed=1)
        assert len(set(labels[:30])) == 1
        assert len(set(labels[30:])) == 1
        assert labels[0] != labels[30]
        assert inertia < 1.0

    def test_deterministic_under_seed(self):
        rng = np.random.default_rng(2)
        data = rng.random((40, 6))
        a = kmeans(data, 3, seed=5)
        b = kmeans(data, 3, seed=5)
        assert np.array_equal(a[0], b[0])
        assert a[2] == b[2]

    def test_k_equals_n(self):
        rng = np.random.default_rng(3)
        data = rng.random((4, 3))
        labels, _, inertia = kmeans(data, 4, seed=0)
        assert sorted(set(labels.tolist())) == [0, 1, 2, 3]
        assert inertia == pytest.approx(0.0, abs=1e-9)

    def test_validation(self):
        with pytest.raises(ValidationError):
            kmeans(np.random.default_rng(0).random((2, 3)), 5)
        with pytest.raises(ValidationError):
            kmeans(np.random.default_rng(0).random((5, 3)), 0)


class TestInduceScheme:
    def test_synthetic_ecosystem_recovered(self):
        _, tools, _, scheme = synthetic_ecosystem(n_tools=100, seed=3)
        documents = [t.description for t in tools]
        gold = [scheme.index(t.primary_direction) for t in tools]
        induced, labels = induce_scheme(documents, 5, seed=1)
        assert len(induced) == 5
        assert adjusted_rand_index(gold, labels) > 0.6

    def test_icsc_weak_signal_documented(self, tools, scheme):
        # On 25 short real descriptions induction is weak — the empirical
        # justification for the paper's MANUAL classification.  It must
        # still beat chance.
        documents = [t.description for t in tools]
        gold = [scheme.index(t.primary_direction) for t in tools]
        _, labels = induce_scheme(documents, 5, seed=0)
        ari = adjusted_rand_index(gold, labels)
        assert 0.0 < ari < 0.5

    def test_categories_carry_keywords(self):
        _, tools, _, _ = synthetic_ecosystem(n_tools=40, seed=2)
        induced, _ = induce_scheme([t.description for t in tools], 3, seed=0)
        assert all(c.keywords for c in induced)

    def test_too_few_documents(self):
        with pytest.raises(ClassificationError):
            induce_scheme(["one text"], 3)


class TestAdjustedRandIndex:
    def test_identical_partitions(self):
        assert adjusted_rand_index([0, 0, 1, 1], [5, 5, 9, 9]) == pytest.approx(1.0)

    def test_orthogonal_partitions_near_zero(self):
        a = [0, 0, 1, 1] * 25
        b = [0, 1] * 50
        assert abs(adjusted_rand_index(a, b)) < 0.1

    def test_symmetry(self):
        a = [0, 1, 1, 2, 2, 2]
        b = [1, 1, 0, 2, 0, 2]
        assert adjusted_rand_index(a, b) == pytest.approx(
            adjusted_rand_index(b, a)
        )

    def test_validation(self):
        with pytest.raises(ValidationError):
            adjusted_rand_index([0, 1], [0])
        with pytest.raises(ValidationError):
            adjusted_rand_index([], [])
