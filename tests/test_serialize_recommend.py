"""Unit tests for workflow serialization and collaboration recommendations."""

import pytest

from repro.continuum.resources import default_continuum
from repro.continuum.scheduling import HeftScheduler
from repro.continuum.serialize import (
    load_workflow,
    save_workflow,
    schedule_to_dot,
    workflow_from_dict,
    workflow_to_dict,
    workflow_to_dot,
)
from repro.continuum.workflow import Task, Workflow, random_workflow
from repro.errors import SerializationError, ValidationError
from repro.network.bipartite import institution_direction_graph
from repro.network.recommend import complementarity, recommend_collaborations


class TestWorkflowSerialization:
    def test_roundtrip_preserves_everything(self):
        original = Workflow(
            "demo",
            [
                Task("a", 5.0, 2.0, frozenset({"gpu"})),
                Task("b", 3.0),
            ],
            [("a", "b")],
        )
        restored = workflow_from_dict(workflow_to_dict(original))
        assert restored.name == original.name
        assert restored.edges == original.edges
        assert restored["a"].requirements == frozenset({"gpu"})
        assert restored["b"].work == 3.0

    def test_random_workflow_roundtrip(self):
        original = random_workflow(40, seed=12)
        restored = workflow_from_dict(workflow_to_dict(original))
        assert restored.edges == original.edges
        assert [t.work for t in restored] == [t.work for t in original]

    def test_file_roundtrip(self, tmp_path):
        original = random_workflow(10, seed=3)
        path = tmp_path / "wf.json"
        save_workflow(original, path)
        assert load_workflow(path).edges == original.edges

    def test_bad_version(self):
        with pytest.raises(SerializationError):
            workflow_from_dict({"format_version": 99, "name": "x", "tasks": []})

    def test_malformed_document(self):
        with pytest.raises(SerializationError):
            workflow_from_dict({"format_version": 1, "name": "x"})

    def test_cycle_rejected_on_load(self):
        document = {
            "format_version": 1,
            "name": "bad",
            "tasks": [{"key": "a", "work": 1.0}, {"key": "b", "work": 1.0}],
            "edges": [["a", "b"], ["b", "a"]],
        }
        with pytest.raises(Exception):
            workflow_from_dict(document)

    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_workflow(tmp_path / "absent.json")


class TestDotExport:
    def test_workflow_dot_structure(self):
        wf = Workflow("d", [Task("a", 1.0, 2.0), Task("b", 1.0)], [("a", "b")])
        dot = workflow_to_dot(wf)
        assert dot.startswith('digraph "d" {')
        assert '"a" -> "b" [label="2"];' in dot
        assert dot.rstrip().endswith("}")

    def test_schedule_dot_clusters_by_resource(self):
        wf = random_workflow(8, seed=5)
        continuum = default_continuum(n_hpc=1, n_cloud=1, n_edge=1, seed=5)
        schedule = HeftScheduler().schedule(wf, continuum)
        dot = schedule_to_dot(schedule)
        used = {p.resource for p in schedule.placements}
        for resource in used:
            assert f'label="{resource}"' in dot
        assert dot.count("subgraph cluster_") == len(used)

    def test_dot_escaping(self):
        wf = Workflow('has"quote', [Task("t", 1.0)])
        dot = workflow_to_dot(wf)
        assert 'digraph "has\\"quote"' in dot


class TestRecommendations:
    @pytest.fixture(scope="class")
    def graph(self, tools, scheme):
        return institution_direction_graph(tools, scheme)

    def test_top_pair_achieves_full_coverage(self, graph, scheme):
        recommendations = recommend_collaborations(graph, top_k=3)
        assert recommendations, "expected at least one recommendation"
        best = recommendations[0]
        # UNITO (IC, OR) + UNICAL (PP, BD) is the maximal-gain pairing.
        assert best.institutions == ("unical", "unito")
        assert best.gain == 2

    def test_unipi_unito_covers_everything(self, graph, scheme):
        entry = complementarity(graph, "unipi", "unito")
        assert entry.joint_coverage == frozenset(scheme.keys)

    def test_zero_gain_pairs_dropped(self, graph):
        recommendations = recommend_collaborations(graph, top_k=100)
        assert all(r.gain > 0 for r in recommendations)

    def test_scores_sorted(self, graph):
        recommendations = recommend_collaborations(graph, top_k=100)
        scores = [r.score for r in recommendations]
        assert scores == sorted(scores, reverse=True)

    def test_validation(self, graph):
        with pytest.raises(ValidationError):
            complementarity(graph, "unito", "unito")
        with pytest.raises(ValidationError):
            complementarity(graph, "unito", "ghost")
        with pytest.raises(ValidationError):
            recommend_collaborations(graph, top_k=0)
