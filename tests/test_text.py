"""Unit tests for tokenization, stopwords, and keyword extraction."""

import pytest

from repro.errors import ValidationError
from repro.text.keywords import Keyword, extract_keywords, keyword_overlap
from repro.text.stopwords import STOPWORDS, is_stopword, remove_stopwords
from repro.text.tokenize import ngrams, sentences, tokenize, word_spans


class TestTokenize:
    def test_lowercases(self):
        assert tokenize("HPC Cloud") == ["hpc", "cloud"]

    def test_compound_splitting(self):
        assert tokenize("multi-cloud") == ["multi-cloud", "multi", "cloud"]

    def test_compound_splitting_disabled(self):
        assert tokenize("multi-cloud", split_compounds=False) == ["multi-cloud"]

    def test_apostrophes_kept(self):
        assert "provider's" in tokenize("the provider's view")

    def test_numbers(self):
        assert tokenize("RISC-V 2023") == ["risc-v", "risc", "v", "2023"]

    def test_empty(self):
        assert tokenize("") == []

    def test_punctuation_stripped(self):
        assert tokenize("a, b; c!") == ["a", "b", "c"]


class TestWordSpans:
    def test_spans_cover_tokens(self):
        text = "Cloud HPC"
        spans = list(word_spans(text))
        assert spans == [("cloud", 0, 5), ("hpc", 6, 9)]


class TestSentences:
    def test_splits_on_terminal_punctuation(self):
        text = "First sentence. Second one! Third?"
        assert len(sentences(text)) == 3

    def test_abbreviation_not_split_without_capital(self):
        text = "approx. values are fine."
        assert len(sentences(text)) == 1

    def test_empty(self):
        assert sentences("   ") == []


class TestNgrams:
    def test_bigrams(self):
        assert ngrams(["a", "b", "c"], 2) == [("a", "b"), ("b", "c")]

    def test_n_larger_than_input(self):
        assert ngrams(["a"], 3) == []

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            ngrams(["a"], 0)


class TestStopwords:
    def test_function_words(self):
        assert is_stopword("The")
        assert is_stopword("and")

    def test_boilerplate_words(self):
        assert is_stopword("paper")
        assert is_stopword("novel")

    def test_content_words_kept(self):
        assert not is_stopword("workflow")
        assert not is_stopword("orchestration")

    def test_remove_preserves_order(self):
        assert remove_stopwords(["the", "workflow", "is", "fast"]) == [
            "workflow", "fast",
        ]

    def test_frozen(self):
        assert isinstance(STOPWORDS, frozenset)


class TestKeywords:
    TEXT = (
        "Scientific workflow orchestration targets the computing continuum. "
        "Workflow orchestration requires placement algorithms. "
        "Placement algorithms optimize energy consumption."
    )

    def test_extracts_multiword_phrases(self):
        keywords = extract_keywords(self.TEXT, top_k=5)
        phrases = [k.phrase for k in keywords]
        assert any("workflow orchestration" in p for p in phrases)

    def test_top_k_limits(self):
        assert len(extract_keywords(self.TEXT, top_k=2)) == 2

    def test_deterministic(self):
        a = extract_keywords(self.TEXT)
        b = extract_keywords(self.TEXT)
        assert a == b

    def test_empty_text(self):
        assert extract_keywords("the of and") == []

    def test_max_words_cap(self):
        keywords = extract_keywords(self.TEXT, max_words=1)
        assert all(len(k.phrase.split()) == 1 for k in keywords)

    def test_validation(self):
        with pytest.raises(ValidationError):
            extract_keywords(self.TEXT, top_k=0)
        with pytest.raises(ValidationError):
            extract_keywords(self.TEXT, max_words=0)
        with pytest.raises(ValidationError):
            Keyword("", 1.0, 1)

    def test_overlap(self):
        a = extract_keywords(self.TEXT)
        assert keyword_overlap(a, a) == 1.0
        assert keyword_overlap(a, []) == 0.0
        assert keyword_overlap([], []) == 1.0
