"""Package hygiene: exports, docstrings, and doctests.

Guards the public surface: every ``__all__`` name must resolve, every
public module must import cleanly, public callables must be documented,
and the doctest examples embedded in docstrings must actually run.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro

PUBLIC_MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.rsplit(".", 1)[-1].startswith("_")
)

DOCTEST_MODULES = [
    "repro.core.entities",
    "repro.core.taxonomy",
    "repro.core.facets",
    "repro.corpus.publication",
    "repro.corpus.query",
    "repro.stats.frequency",
    "repro.text.similarity",
    "repro.text.stem",
    "repro.text.tokenize",
    "repro.telemetry",
    "repro.telemetry.tracer",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_imports(module_name):
    importlib.import_module(module_name)


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_all_names_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", ()):
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name!r}"


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), (
        f"{module_name} lacks a module docstring"
    )


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_public_callables_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name in getattr(module, "__all__", ()):
        obj = getattr(module, name)
        if callable(obj) and getattr(obj, "__module__", "") == module_name:
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
    assert not undocumented, (
        f"{module_name}: undocumented public callables {undocumented}"
    )


@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_doctests_pass(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module_name} has no doctest examples"
    assert results.failed == 0


def test_top_level_version():
    assert repro.__version__
    major = int(repro.__version__.split(".")[0])
    assert major >= 1


def test_exception_hierarchy_is_catchable():
    from repro.errors import ReproError
    import repro.errors as errors_module

    for name in errors_module.__all__:
        exc_type = getattr(errors_module, name)
        assert issubclass(exc_type, ReproError)
