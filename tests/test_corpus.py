"""Unit tests for Publication, Corpus, venues, queries, and dedup."""

import pytest

from repro.corpus.corpus import Corpus
from repro.corpus.dedup import find_duplicates, merge_cluster
from repro.corpus.publication import Publication, make_pub_key, normalize_title
from repro.corpus.query import Query
from repro.corpus.venues import VenueNormalizer
from repro.errors import CorpusError, DuplicateEntityError, QueryError, ValidationError


def _pub(key, title, year=2020, **kwargs):
    return Publication(key=key, title=title, year=year, **kwargs)


class TestPublication:
    def test_normalize_title(self):
        assert normalize_title("StreamFlow: Cross-Breeding  Cloud with HPC!") == \
            "streamflow cross breeding cloud with hpc"

    def test_make_pub_key(self):
        assert make_pub_key("Colonnelli, Iacopo", 2021, "StreamFlow: x") == \
            "colonnelli2021streamflow"

    def test_make_pub_key_missing_parts(self):
        assert make_pub_key("", None, "") == "anon0000untitled"

    def test_requires_title(self):
        with pytest.raises(ValidationError):
            Publication(key="k", title="  ")

    def test_cite(self):
        pub = _pub("k", "A Title", authors=("Rossi, Anna", "Bianchi, B."))
        assert pub.cite() == "Rossi et al. (2020). A Title."

    def test_searchable_text_includes_fields(self):
        pub = _pub("k", "Title", abstract="Abs", venue="V", keywords=("kw",))
        text = pub.searchable_text()
        for fragment in ("Title", "Abs", "V", "kw"):
            assert fragment in text


class TestQuery:
    CORPUS = [
        _pub("1", "Workflow orchestration on clouds"),
        _pub("2", "A survey of workflow systems"),
        _pub("3", "Energy management", abstract="edge workflow pipelines"),
        _pub("4", "Streaming dataflow engines"),
    ]

    def test_and_or_not(self):
        query = Query("workflow AND NOT survey")
        assert [p.key for p in query.filter(self.CORPUS)] == ["1", "3"]

    def test_or(self):
        query = Query("survey OR streaming")
        assert [p.key for p in query.filter(self.CORPUS)] == ["2", "4"]

    def test_juxtaposition_is_and(self):
        assert Query("workflow orchestration").matches(self.CORPUS[0])
        assert not Query("workflow orchestration").matches(self.CORPUS[1])

    def test_phrase(self):
        query = Query('"workflow orchestration"')
        assert query.matches(self.CORPUS[0])
        assert not query.matches(self.CORPUS[2])

    def test_prefix_wildcard(self):
        query = Query("orchestr*")
        assert query.matches(self.CORPUS[0])

    def test_parentheses(self):
        query = Query("(survey OR streaming) AND NOT dataflow")
        assert [p.key for p in query.filter(self.CORPUS)] == ["2"]

    def test_whole_word_matching(self):
        assert not Query("flow").matches_text("workflow systems")
        assert Query("flow").matches_text("the flow of data")

    @pytest.mark.parametrize(
        "bad", ["", "   ", "(a", "a)", "AND", '""', "*", "a AND"]
    )
    def test_malformed(self, bad):
        with pytest.raises(QueryError):
            Query(bad)


class TestVenueNormalizer:
    def test_alias_table(self):
        normalizer = VenueNormalizer()
        assert normalizer.normalize(
            "IEEE Transactions on Parallel and Distributed Systems"
        ) == "tpds"
        assert normalizer.normalize("Future Generation Computer Systems") == "fgcs"

    def test_acronym_extraction(self):
        normalizer = VenueNormalizer()
        assert normalizer.normalize(
            "Fancy New Conference (FNC)"
        ) == "fnc"

    def test_blank(self):
        assert VenueNormalizer().normalize("  ") == ""

    def test_add_alias(self):
        normalizer = VenueNormalizer()
        normalizer.add_alias("myconf", "my special conference")
        assert normalizer.normalize("Proc. of My Special Conference") == "myconf"

    def test_add_alias_validation(self):
        with pytest.raises(ValueError):
            VenueNormalizer().add_alias("", "x")

    def test_group(self):
        normalizer = VenueNormalizer()
        grouped = normalizer.group(
            ["IEEE TPDS", "IEEE Trans. on Parallel and Distributed Systems"]
        )
        assert len(grouped) == 1


class TestDedup:
    def test_case_variant_detected(self):
        a = _pub("a", "Scalable Workflows for HPC Systems")
        b = _pub("b", "SCALABLE WORKFLOWS FOR HPC SYSTEMS")
        clusters = find_duplicates([a, b])
        assert len(clusters) == 1

    def test_subtitle_truncation_detected(self):
        a = _pub("a", "Scalable workflows for HPC: a longitudinal case study")
        b = _pub("b", "Scalable workflows for HPC")
        assert len(find_duplicates([a, b])) == 1

    def test_year_slack(self):
        a = _pub("a", "Identical title here", year=2020)
        b = _pub("b", "Identical title here", year=2021)
        c = _pub("c", "Identical title here", year=2024)
        clusters = find_duplicates([a, b, c])
        assert len(clusters) == 1
        assert {p.key for p in clusters[0]} == {"a", "b"}

    def test_distinct_papers_kept_apart(self):
        a = _pub("a", "Energy-aware placement of virtual machines")
        b = _pub("b", "Continuous stream processing on multicores")
        assert find_duplicates([a, b]) == []

    def test_threshold_validation(self):
        with pytest.raises(CorpusError):
            find_duplicates([], threshold=0.0)

    def test_merge_prefers_richest(self):
        a = _pub("a", "T", abstract="long abstract here", doi="10.1/x",
                 keywords=("k1",))
        b = _pub("b", "T", keywords=("k2",))
        merged = merge_cluster((b, a))
        assert merged.key == "a"  # richer record wins as base
        assert set(merged.keywords) == {"k1", "k2"}
        assert merged.abstract == "long abstract here"

    def test_merge_empty_cluster(self):
        with pytest.raises(CorpusError):
            merge_cluster(())


class TestCorpus:
    def test_duplicate_key_rejected(self):
        corpus = Corpus([_pub("a", "T")])
        with pytest.raises(DuplicateEntityError):
            corpus.add(_pub("a", "T2"))

    def test_search(self):
        corpus = Corpus([_pub("a", "Workflow things"), _pub("b", "Other")])
        assert [p.key for p in corpus.search("workflow")] == ["a"]

    def test_by_year_fills_gap_years(self):
        # 2021 has no publications but must appear with a zero count — a
        # trend series with silently missing years distorts Fig-2 plots.
        corpus = Corpus([_pub("a", "T", 2020), _pub("b", "U", 2020),
                         _pub("c", "V", 2022)])
        assert corpus.by_year().to_dict() == {2020: 2, 2021: 0, 2022: 1}

    def test_by_year_single_year(self):
        corpus = Corpus([_pub("a", "T", 2020)])
        assert corpus.by_year().to_dict() == {2020: 1}

    def test_by_year_requires_years(self):
        corpus = Corpus([Publication(key="a", title="T")])
        with pytest.raises(CorpusError):
            corpus.by_year()

    def test_year_range(self):
        corpus = Corpus([_pub("a", "T", 2005), _pub("b", "U", 2021)])
        assert corpus.year_range() == (2005, 2021)

    def test_deduplicate_keeps_order(self):
        corpus = Corpus([
            _pub("a", "Unique title one"),
            _pub("b", "A very repeated title"),
            _pub("c", "A VERY REPEATED TITLE"),
            _pub("d", "Unique title two"),
        ])
        deduped = corpus.deduplicate()
        assert deduped.keys == ("a", "b", "d")

    def test_getitem_unknown(self):
        with pytest.raises(CorpusError):
            Corpus([_pub("a", "T")])["zzz"]

    def test_by_venue_ranked(self):
        corpus = Corpus([
            _pub("a", "T", venue="IEEE TPDS"),
            _pub("b", "U", venue="IEEE TPDS"),
            _pub("c", "V", venue="FGCS"),
        ])
        table = corpus.by_venue()
        assert table.mode() == "tpds"


class TestCollisionPolicies:
    def test_suffix_disambiguates(self):
        corpus = Corpus([_pub("a", "First")])
        key = corpus.add(_pub("a", "Second"), on_collision="suffix")
        assert key == "a-2"
        assert corpus["a"].title == "First"
        assert corpus["a-2"].title == "Second"

    def test_suffix_chains(self):
        corpus = Corpus([_pub("a", "First")])
        corpus.add(_pub("a", "Second"), on_collision="suffix")
        key = corpus.add(_pub("a", "Third"), on_collision="suffix")
        assert key == "a-3"

    def test_skip_drops_record(self):
        corpus = Corpus([_pub("a", "First")])
        assert corpus.add(_pub("a", "Second"), on_collision="skip") is None
        assert len(corpus) == 1
        assert corpus["a"].title == "First"

    def test_unknown_policy(self):
        with pytest.raises(CorpusError):
            Corpus().add(_pub("a", "T"), on_collision="merge")

    def test_extend_reports_stored_keys(self):
        corpus = Corpus()
        stored = corpus.extend(
            [_pub("a", "First"), _pub("a", "Second"), _pub("b", "Third")],
            on_collision="suffix",
        )
        assert stored == ["a", "a-2", "b"]

    def test_resolve_collision_shared_helper(self):
        from repro.corpus.corpus import resolve_collision

        assert resolve_collision("x", {"a"}, "error") == "x"
        assert resolve_collision("a", {"a"}, "skip") is None
        assert resolve_collision("a", {"a", "a-2"}, "suffix") == "a-3"
        with pytest.raises(DuplicateEntityError):
            resolve_collision("a", {"a"}, "error")

    def test_from_bibtex_with_collisions(self):
        corpus = Corpus.from_bibtex(
            "@misc{k, title = {One}}\n@misc{k, title = {Two}}",
            on_collision="suffix",
        )
        assert corpus.keys == ("k", "k-2")
