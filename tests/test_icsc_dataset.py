"""Ground-truth tests: the encoded dataset must reproduce every published number."""

from collections import Counter

import pytest

from repro.core.analysis import coverage_histogram, supply_distribution
from repro.data.expected import (
    FIG2_COUNTS,
    FIG3_HISTOGRAM,
    FIG4_VOTES,
    N_APPLICATION_PROVIDERS,
    N_APPLICATIONS,
    N_TOOL_INSTITUTIONS,
    N_TOOLS,
    Q2_SHARES,
    Q3_SHARES,
    TABLE1_CONTENT,
    TABLE2_CONTENT,
    TABLE2_TOTAL_SELECTIONS,
)
from repro.data.icsc import icsc_spokes, spoke1_structure


class TestHeadlineCounts:
    def test_25_tools(self, tools):
        assert len(tools) == N_TOOLS

    def test_10_applications(self, applications):
        assert len(applications) == N_APPLICATIONS

    def test_9_tool_institutions(self, tools):
        assert len(tools.institutions()) == N_TOOL_INSTITUTIONS

    def test_11_application_providers(self, applications):
        assert len(applications.providers()) == N_APPLICATION_PROVIDERS


class TestFig2:
    def test_counts(self, tools, scheme):
        assert tools.direction_counts(scheme) == FIG2_COUNTS

    def test_supply_distribution_matches(self, tools, scheme):
        table = supply_distribution(tools, scheme)
        assert table.to_dict() == FIG2_COUNTS
        assert table.total == N_TOOLS

    def test_quoted_shares(self, tools, scheme):
        table = supply_distribution(tools, scheme)
        assert table.share("interactive-computing") == pytest.approx(
            Q2_SHARES["interactive-computing"]
        )
        assert table.share("orchestration") == pytest.approx(
            Q2_SHARES["orchestration"]
        )


class TestFig3:
    def test_histogram(self, tools, scheme):
        table = coverage_histogram(tools, scheme)
        assert table.to_dict() == FIG3_HISTOGRAM

    def test_majority_single_direction(self, tools):
        coverage = tools.institution_coverage()
        singles = sum(1 for dirs in coverage.values() if len(dirs) == 1)
        assert singles * 2 > len(coverage)  # "more than half"

    def test_nobody_spans_all_directions(self, tools, scheme):
        coverage = tools.institution_coverage()
        assert all(len(dirs) < len(scheme) for dirs in coverage.values())


class TestFig4:
    def test_votes(self, tools, applications, scheme):
        votes = Counter()
        for app in applications:
            for key in app.selected_tools:
                votes[tools[key].primary_direction] += 1
        assert {k: votes[k] for k in scheme.keys} == FIG4_VOTES

    def test_total_votes(self, selection):
        assert selection.total_selections == TABLE2_TOTAL_SELECTIONS

    def test_quoted_bounds(self, selection, tools, scheme):
        votes = selection.votes_per_direction(tools, scheme)
        assert votes.share("energy-efficiency") < Q3_SHARES["energy-efficiency-max"]
        assert votes.share("orchestration") > Q3_SHARES["orchestration-min"]


class TestTable1Content:
    def test_full_published_classification(self, tools, scheme):
        for direction, names in TABLE1_CONTENT.items():
            assert tuple(t.name for t in tools.by_direction(direction)) == names


class TestTable2Content:
    def test_full_published_checkmarks(self, tools, applications):
        by_section = {a.section: a for a in applications}
        for section, names in TABLE2_CONTENT.items():
            app = by_section[section]
            assert tuple(tools[k].name for k in app.selected_tools) == names

    def test_streamflow_has_most_votes(self, selection):
        votes = selection.votes_per_tool()
        assert votes.mode() == "streamflow"
        assert votes["streamflow"] == 3


class TestStructures:
    def test_spoke1_has_five_flagships_two_labs(self):
        structure = spoke1_structure()
        assert len(structure["flagships"]) == 5
        assert len(structure["living_labs"]) == 2
        assert structure["financial_envelope_meur"] == 21.5

    def test_fl3_coordinated_by_unipi(self):
        structure = spoke1_structure()
        fl3 = next(f for f in structure["flagships"] if f["key"] == "fl3")
        assert fl3["coordinator"] == "unipi"

    def test_eleven_spokes(self):
        spokes = icsc_spokes()
        assert len(spokes) == 11
        assert spokes[1]["title"] == "FutureHPC & Big Data"
        assert spokes[10]["title"] == "Quantum Computing"

    def test_inferred_flags_present(self, tools):
        inferred = [t.key for t in tools if t.institution_inferred]
        # The reconstruction marks at least the known-ambiguous assignments.
        assert "malaga" in inferred
        assert "mlir" in inferred

    def test_every_tool_has_description(self, tools):
        assert all(t.description.strip() for t in tools)

    def test_every_application_has_description(self, applications):
        assert all(a.description.strip() for a in applications)
