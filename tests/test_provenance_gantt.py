"""Unit tests for provenance records and the Gantt renderer."""

import xml.dom.minidom

import pytest

from repro.continuum.resources import default_continuum
from repro.continuum.scheduling import HeftScheduler
from repro.continuum.simulate import simulate_schedule
from repro.continuum.workflow import random_workflow
from repro.errors import RenderError, ValidationError
from repro.reporting.provenance import (
    ProvenanceLog,
    ProvenanceRecord,
    dataset_fingerprint,
)
from repro.viz.gantt import gantt_chart


class TestFingerprint:
    def test_deterministic(self, ecosystem):
        assert dataset_fingerprint(*ecosystem) == dataset_fingerprint(*ecosystem)

    def test_sensitive_to_content(self, ecosystem):
        from repro.data.synthetic import synthetic_ecosystem

        other = synthetic_ecosystem(n_tools=5, n_applications=2,
                                    n_institutions=2, seed=0)
        assert dataset_fingerprint(*ecosystem) != dataset_fingerprint(*other)

    def test_is_sha256_hex(self, ecosystem):
        fingerprint = dataset_fingerprint(*ecosystem)
        assert len(fingerprint) == 64
        int(fingerprint, 16)  # parses as hex


class TestProvenanceLog:
    def test_record_and_query(self):
        log = ProvenanceLog()
        log.record("fig2.svg", "render", inputs={"dataset": "abc"},
                   parameters={"seed": 2023})
        log.record("fig3.svg", "render")
        assert len(log) == 2
        (entry,) = log.for_artifact("fig2.svg")
        assert entry.parameters == {"seed": 2023}
        assert entry.library_version

    def test_roundtrip(self, tmp_path):
        log = ProvenanceLog()
        log.record("a.svg", "render", inputs={"dataset": "ff" * 32})
        path = tmp_path / "provenance.json"
        log.save(path)
        restored = ProvenanceLog.load(path)
        assert len(restored) == 1
        assert restored.for_artifact("a.svg")[0].inputs == {"dataset": "ff" * 32}

    def test_load_missing(self, tmp_path):
        with pytest.raises(ValidationError):
            ProvenanceLog.load(tmp_path / "nope.json")

    def test_record_validation(self):
        with pytest.raises(ValidationError):
            ProvenanceRecord("", "step")
        with pytest.raises(ValidationError):
            ProvenanceRecord("a", "")

    def test_render_all_artifacts_writes_sidecar(self, ecosystem, tmp_path):
        from repro.data.icsc import spoke1_structure
        from repro.reporting.figures import render_all_artifacts

        institutions, tools, applications, scheme = ecosystem
        artifacts = render_all_artifacts(
            tools, applications, scheme, tmp_path,
            spoke1=spoke1_structure(), institutions=institutions,
        )
        assert "provenance" in artifacts
        log = ProvenanceLog.load(artifacts["provenance"])
        assert len(log) == len(artifacts) - 1  # every artifact but the sidecar
        fingerprints = {r.inputs["dataset"] for r in log}
        assert fingerprints == {dataset_fingerprint(*ecosystem)}


class TestGantt:
    @pytest.fixture(scope="class")
    def schedule(self):
        wf = random_workflow(25, seed=6)
        return HeftScheduler().schedule(wf, default_continuum(seed=6))

    def test_renders_wellformed(self, schedule):
        doc = gantt_chart(schedule, title="Plan")
        xml.dom.minidom.parseString(doc.render())

    def test_one_bar_per_task(self, schedule):
        svg = gantt_chart(schedule, show_task_labels=False).render()
        # Bars are rounded rects (rx=2); lanes/backgrounds are square.
        assert svg.count('rx="2"') == len(schedule.workflow)

    def test_realized_trace_renderable(self, schedule):
        trace = simulate_schedule(schedule, jitter=0.3, seed=1)
        doc = gantt_chart(schedule, placements=trace.placements,
                          title="Realized")
        xml.dom.minidom.parseString(doc.render())

    def test_unknown_resource_rejected(self, schedule):
        from repro.continuum.scheduling import TaskPlacement

        with pytest.raises(RenderError):
            gantt_chart(schedule, placements=[
                TaskPlacement("x", "ghost", 0.0, 1.0)
            ])

    def test_empty_placements_rejected(self, schedule):
        with pytest.raises(RenderError):
            gantt_chart(schedule, placements=[])
