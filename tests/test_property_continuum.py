"""Property-based tests for workflows, scheduling, and simulation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.continuum.resources import default_continuum
from repro.continuum.scheduling import (
    EnergyAwareScheduler,
    HeftScheduler,
    RoundRobinScheduler,
)
from repro.continuum.simulate import simulate_schedule
from repro.continuum.workflow import random_workflow

workflow_params = st.tuples(
    st.integers(min_value=1, max_value=25),   # n_tasks
    st.floats(min_value=0.0, max_value=0.5),  # edge probability
    st.integers(min_value=0, max_value=10_000),  # seed
)

continuum_seeds = st.integers(min_value=0, max_value=10_000)


class TestDagProperties:
    @given(workflow_params)
    def test_generator_always_acyclic_and_ordered(self, params):
        n, p, seed = params
        wf = random_workflow(n, edge_probability=p, seed=seed)
        order = {k: i for i, k in enumerate(wf.topological_order())}
        assert len(order) == n
        assert all(order[a] < order[b] for a, b in wf.edges)

    @given(workflow_params)
    def test_critical_path_bounds(self, params):
        n, p, seed = params
        wf = random_workflow(n, edge_probability=p, seed=seed)
        path, length = wf.critical_path()
        assert 0 < length <= wf.total_work() + 1e-9
        assert 1 <= len(path) <= n
        # The path must be a chain in the DAG.
        for a, b in zip(path, path[1:]):
            assert b in wf.successors(a)

    @given(workflow_params)
    def test_width_profile_sums_to_n(self, params):
        n, p, seed = params
        wf = random_workflow(n, edge_probability=p, seed=seed)
        assert sum(wf.width_profile().values()) == n


class TestSchedulingProperties:
    @given(workflow_params, continuum_seeds)
    @settings(max_examples=30, deadline=None)
    def test_all_schedulers_produce_valid_schedules(self, params, cseed):
        n, p, seed = params
        wf = random_workflow(n, edge_probability=p, seed=seed)
        continuum = default_continuum(n_hpc=1, n_cloud=2, n_edge=2, seed=cseed)
        for scheduler in (
            HeftScheduler(),
            EnergyAwareScheduler(slack=1.5),
            RoundRobinScheduler(),
        ):
            schedule = scheduler.schedule(wf, continuum)
            schedule.validate()  # dependency + exclusivity invariants
            assert schedule.makespan > 0.0
            assert schedule.busy_energy() > 0.0
            assert schedule.total_energy() >= schedule.busy_energy() - 1e-9

    @given(workflow_params)
    @settings(max_examples=25, deadline=None)
    def test_makespan_lower_bound(self, params):
        n, p, seed = params
        wf = random_workflow(n, edge_probability=p, seed=seed)
        continuum = default_continuum(n_hpc=1, n_cloud=1, n_edge=1, seed=0)
        schedule = HeftScheduler().schedule(wf, continuum)
        # Makespan can never beat the critical path on the fastest node.
        _, cp = wf.critical_path()
        fastest = max(continuum.speeds)
        assert schedule.makespan >= cp / fastest - 1e-9


class TestSimulationProperties:
    @given(workflow_params, continuum_seeds)
    @settings(max_examples=25, deadline=None)
    def test_zero_jitter_reproduces_plan(self, params, cseed):
        n, p, seed = params
        wf = random_workflow(n, edge_probability=p, seed=seed)
        continuum = default_continuum(n_hpc=1, n_cloud=2, n_edge=1, seed=cseed)
        schedule = HeftScheduler().schedule(wf, continuum)
        trace = simulate_schedule(schedule, jitter=0.0)
        assert trace.makespan == pytest.approx(schedule.makespan, rel=1e-9)

    @given(workflow_params, st.floats(min_value=0.05, max_value=0.8),
           st.integers(min_value=0, max_value=99))
    @settings(max_examples=25, deadline=None)
    def test_jittered_execution_respects_dependencies(self, params, jitter, jseed):
        n, p, seed = params
        wf = random_workflow(n, edge_probability=p, seed=seed)
        continuum = default_continuum(n_hpc=1, n_cloud=1, n_edge=1, seed=0)
        schedule = HeftScheduler().schedule(wf, continuum)
        trace = simulate_schedule(schedule, jitter=jitter, seed=jseed)
        start = {t.task: t.start for t in trace.placements}
        finish = {t.task: t.finish for t in trace.placements}
        for a, b in wf.edges:
            assert start[b] >= finish[a] - 1e-9
        assert len(trace.placements) == n
