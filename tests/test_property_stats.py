"""Property-based tests for the statistics substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.diversity import (
    gini_coefficient,
    herfindahl_index,
    shannon_evenness,
    simpson_index,
)
from repro.stats.frequency import FrequencyTable
from repro.stats.inference import total_variation_distance

# Count vectors with at least one positive entry.
counts_vectors = st.lists(
    st.integers(min_value=0, max_value=1000), min_size=2, max_size=12
).filter(lambda v: sum(v) > 0)

positive_vectors = st.lists(
    st.integers(min_value=1, max_value=1000), min_size=2, max_size=12
)


class TestFrequencyProperties:
    @given(counts_vectors)
    def test_shares_sum_to_one(self, values):
        table = FrequencyTable({f"c{i}": v for i, v in enumerate(values)})
        assert table.shares().sum() == pytest.approx(1.0)

    @given(counts_vectors)
    def test_total_equals_sum(self, values):
        table = FrequencyTable({f"c{i}": v for i, v in enumerate(values)})
        assert table.total == sum(values)

    @given(counts_vectors, counts_vectors)
    def test_merge_total_additive(self, a, b):
        ta = FrequencyTable({f"c{i}": v for i, v in enumerate(a)})
        tb = FrequencyTable({f"c{i}": v for i, v in enumerate(b)})
        assert ta.merge(tb).total == ta.total + tb.total

    @given(counts_vectors)
    def test_ranked_is_permutation_and_sorted(self, values):
        table = FrequencyTable({f"c{i}": v for i, v in enumerate(values)})
        ranked = table.ranked()
        assert sorted(v for _, v in ranked) == sorted(values)
        assert all(
            ranked[i][1] >= ranked[i + 1][1] for i in range(len(ranked) - 1)
        )

    @given(counts_vectors)
    def test_mode_has_max_count(self, values):
        table = FrequencyTable({f"c{i}": v for i, v in enumerate(values)})
        assert table[table.mode()] == max(values)


class TestDiversityProperties:
    @given(counts_vectors)
    def test_evenness_in_unit_interval(self, values):
        assert 0.0 <= shannon_evenness(values) <= 1.0 + 1e-9

    @given(counts_vectors)
    def test_simpson_bounds(self, values):
        k = len(values)
        assert -1e-9 <= simpson_index(values) <= 1.0 - 1.0 / k + 1e-9

    @given(counts_vectors)
    def test_simpson_herfindahl_complementary(self, values):
        assert simpson_index(values) + herfindahl_index(values) == pytest.approx(1.0)

    @given(counts_vectors)
    def test_gini_bounds(self, values):
        assert -1e-9 <= gini_coefficient(values) < 1.0

    @given(positive_vectors)
    def test_uniform_scaling_invariance(self, values):
        scaled = [v * 7 for v in values]
        assert shannon_evenness(values) == pytest.approx(shannon_evenness(scaled))
        assert gini_coefficient(values) == pytest.approx(gini_coefficient(scaled))

    @given(st.integers(min_value=2, max_value=12),
           st.integers(min_value=1, max_value=100))
    def test_uniform_distribution_extremes(self, k, c):
        uniform = [c] * k
        assert shannon_evenness(uniform) == pytest.approx(1.0)
        assert gini_coefficient(uniform) == pytest.approx(0.0)


class TestTvdProperties:
    @given(counts_vectors)
    def test_identity_zero(self, values):
        assert total_variation_distance(values, values) == pytest.approx(0.0)

    @given(counts_vectors, counts_vectors)
    def test_symmetry(self, a, b):
        if len(a) != len(b):
            b = (b * ((len(a) // len(b)) + 1))[: len(a)]
            if sum(b) == 0:
                b[0] = 1
        assert total_variation_distance(a, b) == pytest.approx(
            total_variation_distance(b, a)
        )

    @given(counts_vectors, counts_vectors, counts_vectors)
    def test_triangle_inequality(self, a, b, c):
        n = min(len(a), len(b), len(c))
        if n < 2:
            return
        a, b, c = a[:n], b[:n], c[:n]
        if sum(a) == 0 or sum(b) == 0 or sum(c) == 0:
            return
        ab = total_variation_distance(a, b)
        bc = total_variation_distance(b, c)
        ac = total_variation_distance(a, c)
        assert ac <= ab + bc + 1e-9

    @given(counts_vectors, counts_vectors)
    def test_bounded_by_one(self, a, b):
        n = min(len(a), len(b))
        if n < 2:
            return
        a, b = a[:n], b[:n]
        if sum(a) == 0 or sum(b) == 0:
            return
        assert total_variation_distance(a, b) <= 1.0 + 1e-9
