"""Unit tests for the Q1/Q2/Q3 analyzers against the paper's Sec. 4 claims."""

import pytest

from repro.core.questions import answer_q1, answer_q2, answer_q3


class TestQ1:
    @pytest.fixture(scope="class")
    def q1(self, tools, scheme):
        return answer_q1(tools, scheme)

    def test_five_directions(self, q1):
        assert q1.n_directions == 5

    def test_tools_per_direction(self, q1):
        assert len(q1.tools_by_direction["orchestration"]) == 7
        assert q1.tools_by_direction["interactive-computing"] == (
            "BookedSlurm", "ICS", "Jupyter Workflow",
        )

    def test_multi_topic_tools(self, q1):
        assert set(q1.multi_topic_tools) == {
            "Jupyter Workflow", "StreamFlow", "WindFlow",
        }


class TestQ2:
    @pytest.fixture(scope="class")
    def q2(self, tools, scheme):
        return answer_q2(tools, scheme)

    def test_paper_shares(self, q2):
        assert q2.shares["interactive-computing"] == pytest.approx(0.12)
        assert q2.shares["orchestration"] == pytest.approx(0.28)

    def test_balanced(self, q2):
        assert q2.balanced  # "the effort is quite balanced"

    def test_majority_single_topic(self, q2):
        assert q2.majority_single_topic
        assert q2.single_topic_institutions == 5
        assert q2.n_institutions == 9

    def test_no_full_coverage(self, q2):
        assert q2.full_coverage_institutions == 0


class TestQ3:
    @pytest.fixture(scope="class")
    def q3(self, tools, applications, scheme):
        return answer_q3(tools, applications, scheme, seed=11)

    def test_vote_extremes(self, q3):
        assert q3.top_direction == "orchestration"
        assert q3.bottom_direction == "energy-efficiency"

    def test_paper_share_bounds(self, q3):
        assert q3.shares["energy-efficiency"] < 0.036  # "below 3.6%"
        assert q3.shares["orchestration"] > 0.39       # "above 39%"

    def test_critical_directions_are_all_but_energy(self, q3):
        # "at least three application providers" for IC, PP, BD; orchestration
        # trivially; only Serverledge names energy efficiency.
        assert set(q3.critical_directions) == {
            "interactive-computing",
            "orchestration",
            "performance-portability",
            "big-data-management",
        }

    def test_critical_threshold_is_distinct_applications(self, tools, applications, scheme):
        # With threshold 1 every direction qualifies (energy has one app).
        q3 = answer_q3(tools, applications, scheme, critical_threshold=1)
        assert set(q3.critical_directions) == set(scheme.keys)

    def test_votes_sum(self, q3):
        assert q3.votes.total == 28
