"""Unit tests for classification schemes."""

import pytest

from repro.core.taxonomy import (
    Category,
    ClassificationScheme,
    DIRECTION_KEYS,
    Facet,
    workflow_directions,
)
from repro.errors import TaxonomyError, UnknownCategoryError, ValidationError


class TestCategory:
    def test_keywords_lowercased(self):
        cat = Category("k", "K", keywords=("TOSCA", "FaaS"))
        assert cat.keywords == ("tosca", "faas")
        assert cat.matches_keyword("Tosca")

    def test_rejects_uppercase_key(self):
        with pytest.raises(ValidationError):
            Category("Key", "K")

    def test_rejects_key_with_space(self):
        with pytest.raises(ValidationError):
            Category("a key", "K")

    def test_rejects_empty_name(self):
        with pytest.raises(ValidationError):
            Category("k", "")


class TestFacet:
    def test_valid(self):
        facet = Facet("research-direction", "Research direction")
        assert facet.key == "research-direction"

    def test_rejects_bad_key(self):
        with pytest.raises(ValidationError):
            Facet("Research Direction", "x")


class TestClassificationScheme:
    def test_order_preserved(self):
        scheme = ClassificationScheme(
            [Category("b", "B"), Category("a", "A")]
        )
        assert scheme.keys == ("b", "a")
        assert scheme.names == ("B", "A")

    def test_duplicate_key_rejected(self):
        scheme = ClassificationScheme([Category("a", "A")])
        with pytest.raises(TaxonomyError):
            scheme.add(Category("a", "A2"))

    def test_getitem_unknown(self):
        scheme = ClassificationScheme([Category("a", "A")])
        with pytest.raises(UnknownCategoryError):
            scheme["nope"]

    def test_unknown_category_str_is_readable(self):
        scheme = ClassificationScheme([Category("a", "A")])
        try:
            scheme["nope"]
        except UnknownCategoryError as exc:
            assert "nope" in str(exc)

    def test_index(self):
        scheme = workflow_directions()
        assert scheme.index("orchestration") == 1
        with pytest.raises(UnknownCategoryError):
            scheme.index("nope")

    def test_validate_passes_and_fails(self):
        scheme = workflow_directions()
        assert scheme.validate(["orchestration"]) == ("orchestration",)
        with pytest.raises(UnknownCategoryError):
            scheme.validate(["orchestration", "nope"])

    def test_keyword_index_conflict(self):
        scheme = ClassificationScheme(
            [
                Category("a", "A", keywords=("shared",)),
                Category("b", "B", keywords=("shared",)),
            ]
        )
        with pytest.raises(TaxonomyError):
            scheme.keyword_index()

    def test_keyword_index_maps_owner(self):
        scheme = workflow_directions()
        index = scheme.keyword_index()
        assert index["tosca"] == "orchestration"
        assert index["jupyter"] == "interactive-computing"

    def test_subscheme(self):
        scheme = workflow_directions()
        sub = scheme.subscheme(["energy-efficiency", "orchestration"])
        assert sub.keys == ("energy-efficiency", "orchestration")
        assert len(sub) == 2

    def test_contains_and_len(self):
        scheme = workflow_directions()
        assert "orchestration" in scheme
        assert "nope" not in scheme
        assert len(scheme) == 5


class TestWorkflowDirections:
    def test_five_directions_in_paper_order(self):
        scheme = workflow_directions()
        assert scheme.keys == DIRECTION_KEYS
        assert scheme.names[0] == "Interactive computing"
        assert scheme.names[-1] == "Big Data management"

    def test_every_category_has_keywords_and_description(self):
        for category in workflow_directions():
            assert category.keywords
            assert category.description

    def test_facet_set(self):
        assert workflow_directions().facet.key == "research-direction"
