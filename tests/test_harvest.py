"""Integration tests for the optional harvest stage of the pipeline."""

import pytest

from repro.core.protocol import ResearchQuestion, StudyProtocol
from repro.core.study import MappingStudy, StudyStage
from repro.core.taxonomy import workflow_directions
from repro.data.icsc import icsc_applications, icsc_institutions, icsc_tools
from repro.data.synthetic import synthetic_corpus
from repro.errors import StudyError
from repro.screening import has_any_keyword, year_between


def _protocol(queries=()):
    return StudyProtocol(
        "Harvest test",
        (ResearchQuestion("q1", "What exists?"),),
        workflow_directions(),
        search_queries=tuple(queries),
    )


class TestHarvest:
    def test_full_flow_recorded(self):
        corpus = synthetic_corpus(300, seed=9, duplicate_fraction=0.1)
        study = MappingStudy(_protocol())
        study.harvest(
            corpus,
            query="workflow* OR orchestration OR scheduling",
            criterion=year_between(2010, 2023)
            & has_any_keyword(["hpc", "cloud", "edge", "continuum"]),
        )
        flow = study.flow
        stage_names = [stage.name for stage in flow.stages]
        assert stage_names == [
            "records identified",
            "after deduplication",
            "matched search queries",
            "passed screening criteria",
        ]
        assert flow.initial == 300
        assert flow.final == len(study.harvested_publications)
        assert 0 < flow.final < flow.initial

    def test_protocol_queries_used_when_none_given(self):
        corpus = synthetic_corpus(100, seed=2)
        study = MappingStudy(_protocol(queries=("scheduling",)))
        study.harvest(corpus)
        assert "matched search queries" in [
            stage.name for stage in study.flow.stages
        ]

    def test_no_queries_no_query_stage(self):
        corpus = synthetic_corpus(50, seed=1)
        study = MappingStudy(_protocol())
        study.harvest(corpus)
        assert [stage.name for stage in study.flow.stages] == [
            "records identified", "after deduplication",
        ]

    def test_harvest_keeps_planned_stage(self):
        corpus = synthetic_corpus(50, seed=1)
        study = MappingStudy(_protocol())
        study.harvest(corpus)
        assert study.stage is StudyStage.PLANNED
        # Collection still works afterwards.
        study.collect(icsc_institutions(), icsc_tools(), icsc_applications())
        assert study.stage is StudyStage.COLLECTED

    def test_harvest_after_collect_rejected(self):
        study = MappingStudy(_protocol())
        study.collect(icsc_institutions(), icsc_tools(), icsc_applications())
        with pytest.raises(StudyError):
            study.harvest(synthetic_corpus(10, seed=0))

    def test_flow_before_harvest_rejected(self):
        study = MappingStudy(_protocol())
        with pytest.raises(StudyError):
            study.flow
        with pytest.raises(StudyError):
            study.harvested_publications


class TestThreatsSection:
    def test_threats_in_report(self):
        from repro import run_icsc_study, workflow_directions
        from repro.reporting import study_report, threats_to_validity

        results = run_icsc_study()
        section = threats_to_validity(results)
        assert "28 selection votes" in section
        assert "not statistically significant" in section
        assert "## Threats to validity" in study_report(
            results, workflow_directions()
        )
