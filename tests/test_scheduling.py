"""Unit tests for the schedulers and schedule invariants."""

import pytest

from repro.continuum.resources import Continuum, Resource, ResourceKind, default_continuum
from repro.continuum.scheduling import (
    EnergyAwareScheduler,
    HeftScheduler,
    RoundRobinScheduler,
    Schedule,
    TaskPlacement,
)
from repro.continuum.workflow import Task, Workflow, layered_workflow, random_workflow
from repro.errors import SchedulingError

SCHEDULERS = [HeftScheduler(), EnergyAwareScheduler(slack=2.0), RoundRobinScheduler()]


@pytest.fixture(scope="module")
def continuum():
    return default_continuum(n_hpc=2, n_cloud=3, n_edge=4, seed=0)


@pytest.fixture(scope="module")
def workflow():
    return random_workflow(40, seed=2, edge_probability=0.2)


class TestScheduleValidity:
    @pytest.mark.parametrize("scheduler", SCHEDULERS,
                             ids=["heft", "energy", "round-robin"])
    def test_valid_on_random_dag(self, scheduler, workflow, continuum):
        schedule = scheduler.schedule(workflow, continuum)
        schedule.validate()  # no exception
        assert schedule.makespan > 0
        assert len(schedule.placements) == len(workflow)

    @pytest.mark.parametrize("scheduler", SCHEDULERS,
                             ids=["heft", "energy", "round-robin"])
    def test_valid_on_layered(self, scheduler, continuum):
        wf = layered_workflow(4, 5)
        schedule = scheduler.schedule(wf, continuum)
        schedule.validate()

    def test_single_task(self, continuum):
        wf = Workflow("one", [Task("t", 100.0)])
        schedule = HeftScheduler().schedule(wf, continuum)
        assert schedule.makespan == pytest.approx(
            100.0 / max(continuum.speeds)
        )


class TestRequirements:
    def test_gpu_task_placed_on_gpu_node(self, continuum):
        wf = Workflow("gpu", [Task("t", 10.0, requirements={"gpu"})])
        for scheduler in SCHEDULERS:
            schedule = scheduler.schedule(wf, continuum)
            resource = continuum[schedule["t"].resource]
            assert "gpu" in resource.capabilities

    def test_unsatisfiable_requirement(self, continuum):
        wf = Workflow("bad", [Task("t", 10.0, requirements={"quantum"})])
        with pytest.raises(SchedulingError):
            HeftScheduler().schedule(wf, continuum)


class TestHeft:
    def test_ranks_decrease_along_edges(self, workflow, continuum):
        ranks = HeftScheduler().upward_ranks(workflow, continuum)
        for src, dst in workflow.edges:
            assert ranks[src] > ranks[dst]

    def test_deterministic(self, workflow, continuum):
        a = HeftScheduler().schedule(workflow, continuum)
        b = HeftScheduler().schedule(workflow, continuum)
        assert a.makespan == b.makespan
        assert all(a[k].resource == b[k].resource for k in workflow.task_keys)

    def test_beats_round_robin_on_makespan(self, continuum):
        # Communication-light regime where EFT shines.
        wf = random_workflow(60, seed=9, output_range=(0.0, 0.1))
        heft = HeftScheduler().schedule(wf, continuum)
        rr = RoundRobinScheduler().schedule(wf, continuum)
        assert heft.makespan < rr.makespan

    def test_insertion_no_worse_than_append(self, workflow, continuum):
        insertion = HeftScheduler(insertion=True).schedule(workflow, continuum)
        append = HeftScheduler(insertion=False).schedule(workflow, continuum)
        assert insertion.makespan <= append.makespan * 1.0001


class TestEnergyAware:
    def test_slack_validation(self):
        with pytest.raises(SchedulingError):
            EnergyAwareScheduler(slack=0.5)

    def test_more_slack_saves_busy_energy(self, continuum):
        wf = random_workflow(50, seed=4, output_range=(0.0, 0.5))
        tight = EnergyAwareScheduler(slack=1.0).schedule(wf, continuum)
        loose = EnergyAwareScheduler(slack=8.0).schedule(wf, continuum)
        assert loose.busy_energy() <= tight.busy_energy() * 1.0001


class TestScheduleMetrics:
    def test_energy_accounting(self):
        continuum = Continuum(
            [Resource("r", ResourceKind.CLOUD, 10.0, idle_power=10.0,
                      busy_power=100.0)]
        )
        wf = Workflow("w", [Task("t", 50.0)])
        schedule = HeftScheduler().schedule(wf, continuum)
        # Duration 5 s: busy 500 J, no idle (single task spans makespan).
        assert schedule.busy_energy() == pytest.approx(500.0)
        assert schedule.total_energy() == pytest.approx(500.0)

    def test_idle_energy_added(self):
        continuum = Continuum(
            [
                Resource("fast", ResourceKind.HPC, 10.0, idle_power=10.0,
                         busy_power=100.0),
                Resource("idle", ResourceKind.EDGE, 1.0, idle_power=5.0,
                         busy_power=20.0),
            ]
        )
        wf = Workflow("w", [Task("t", 50.0)])
        schedule = HeftScheduler().schedule(wf, continuum)
        assert schedule["t"].resource == "fast"
        # Busy 500 J + idle node 5 W for 5 s = 525 J.
        assert schedule.total_energy() == pytest.approx(525.0)

    def test_carbon_weighted(self):
        continuum = Continuum(
            [Resource("r", ResourceKind.CLOUD, 10.0, idle_power=0.0,
                      busy_power=100.0, carbon_intensity=0.5)]
        )
        wf = Workflow("w", [Task("t", 50.0)])
        schedule = HeftScheduler().schedule(wf, continuum)
        assert schedule.carbon() == pytest.approx(250.0)


class TestScheduleCaching:
    def test_placements_computed_once(self, workflow, continuum):
        schedule = HeftScheduler().schedule(workflow, continuum)
        assert schedule.placements is schedule.placements  # cached tuple

    def test_makespan_computed_once(self, workflow, continuum):
        schedule = HeftScheduler().schedule(workflow, continuum)
        first = schedule.makespan
        assert schedule._makespan == first
        assert schedule.makespan == first


class TestResourceTimelineApi:
    def test_no_private_intervals_attribute(self):
        from repro.continuum.scheduling import _ResourceTimeline

        timeline = _ResourceTimeline()
        assert not hasattr(timeline, "_intervals")
        timeline.reserve(1.0, 2.0)
        assert timeline.last_finish == 3.0
        assert timeline.tail() == 3.0

    def test_append_mode_uses_public_tail(self, workflow, continuum):
        # insertion=False places each task after the resource's tail;
        # parity with the insertion path's validity is all we need here.
        schedule = HeftScheduler(insertion=False).schedule(workflow, continuum)
        schedule.validate()


class TestScheduleValidation:
    def test_missing_placement_detected(self, continuum):
        wf = Workflow("w", [Task("a", 1.0), Task("b", 1.0)])
        with pytest.raises(SchedulingError):
            Schedule(wf, continuum, {"a": TaskPlacement("a", "hpc-00", 0, 1)})

    def test_overlap_detected(self, continuum):
        wf = Workflow("w", [Task("a", 1.0), Task("b", 1.0)])
        schedule = Schedule(
            wf, continuum,
            {
                "a": TaskPlacement("a", "hpc-00", 0.0, 1.0),
                "b": TaskPlacement("b", "hpc-00", 0.5, 1.5),
            },
        )
        with pytest.raises(SchedulingError):
            schedule.validate()

    def test_dependency_violation_detected(self, continuum):
        wf = Workflow("w", [Task("a", 1.0, output_size=1.0), Task("b", 1.0)],
                      [("a", "b")])
        schedule = Schedule(
            wf, continuum,
            {
                "a": TaskPlacement("a", "hpc-00", 0.0, 1.0),
                "b": TaskPlacement("b", "cloud-00", 1.0, 2.0),  # ignores transfer
            },
        )
        with pytest.raises(SchedulingError):
            schedule.validate()
