"""Unit tests for :mod:`repro.telemetry`: tracer, metrics, exporters,
profile report, and the pipeline/cache/manifest instrumentation hooks."""

from __future__ import annotations

import json
import threading

import pytest

from repro.errors import StageExecutionError, TelemetryError
from repro.pipeline import ArtifactCache, Pipeline, RunManifest, Stage
from repro.telemetry import (
    LOG_LEVELS,
    NULL_LOGGER,
    NULL_TELEMETRY,
    MetricsRegistry,
    NullLogger,
    NullTelemetry,
    StructuredLogger,
    Telemetry,
    Tracer,
    chrome_trace,
    ensure,
    load_chrome_trace,
    profile_report,
    render_trace,
    span_events,
    stage_profiles,
    write_chrome_trace,
    write_events_jsonl,
)
from repro.telemetry.tracer import NULL_TRACER


class TestTracer:
    def test_nesting_links_parents(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        # Finish order: inner closes first.
        assert [s.name for s in tracer.spans()] == ["inner", "outer"]

    def test_span_records_wall_and_cpu(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            sum(range(20_000))
        assert span.duration is not None and span.duration >= 0.0
        assert span.cpu_time is not None and span.cpu_time >= 0.0
        assert span.end == pytest.approx(span.start + span.duration)

    def test_tags_seeded_and_mutable(self):
        tracer = Tracer()
        with tracer.span("s", stage="collect") as span:
            span.tags["outcome"] = "executed"
        recorded = tracer.spans()[0]
        assert recorded.tags == {"stage": "collect", "outcome": "executed"}

    def test_exception_tags_error_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("kaput")
        span = tracer.spans()[0]
        assert span.duration is not None
        assert "ValueError" in span.tags["error"]

    def test_explicit_parent_crosses_threads(self):
        tracer = Tracer()
        with tracer.span("run") as run_span:
            def work():
                with tracer.span("stage", parent=run_span):
                    pass
            thread = threading.Thread(target=work)
            thread.start()
            thread.join()
        stage_span = tracer.spans()[0]
        assert stage_span.parent_id == run_span.span_id
        assert stage_span.thread_id != run_span.thread_id

    def test_parallel_tracing_loses_no_spans(self):
        tracer = Tracer()
        barrier = threading.Barrier(4)

        def work(i):
            barrier.wait()
            for j in range(25):
                with tracer.span(f"w{i}.{j}"):
                    pass

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tracer.spans()) == 100

    def test_decorator(self):
        tracer = Tracer()

        @tracer.traced(kind="helper")
        def work(n):
            return n * 2

        assert work(21) == 42
        span = tracer.spans()[0]
        assert span.name == "work"
        assert span.tags == {"kind": "helper"}

    def test_clear_resets(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        tracer.clear()
        assert tracer.spans() == ()


class TestNullTracer:
    def test_span_is_shared_and_inert(self):
        ctx1 = NULL_TRACER.span("a", x=1)
        ctx2 = NULL_TRACER.span("b")
        assert ctx1 is ctx2  # no per-call allocation
        with ctx1 as span:
            span.tags["ignored"] = True  # write-only sink
        assert NULL_TRACER.spans() == ()
        assert not NULL_TRACER.enabled

    def test_decorator_returns_function_unchanged(self):
        def fn():
            return 1

        assert NULL_TRACER.traced()(fn) is fn

    def test_exceptions_propagate(self):
        with pytest.raises(RuntimeError):
            with NULL_TRACER.span("x"):
                raise RuntimeError("through")


class TestMetrics:
    def test_counter(self):
        registry = MetricsRegistry()
        counter = registry.counter("items")
        assert counter.inc() == 1
        assert counter.inc(4) == 5
        assert registry.counter("items") is counter  # get-or-create
        with pytest.raises(TelemetryError):
            counter.inc(-1)

    def test_gauge_tracks_high_watermark(self):
        gauge = MetricsRegistry().gauge("inflight")
        gauge.add(1)
        gauge.add(1)
        gauge.add(-1)
        gauge.add(1)
        assert gauge.value == 2
        assert gauge.max == 2
        gauge.set(0)
        assert gauge.max == 2

    def test_histogram_buckets_and_percentiles(self):
        histogram = MetricsRegistry().histogram(
            "latency", bounds=(0.01, 0.1, 1.0)
        )
        for value in (0.005, 0.05, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.total == pytest.approx(5.555)
        assert histogram.bucket_counts() == {
            "<=0.01": 1, "<=0.1": 1, "<=1": 1, "+inf": 1,
        }
        assert histogram.percentile(50) == pytest.approx(0.275)
        p50, p100 = histogram.percentile([50, 100])
        assert p100 == pytest.approx(5.0)

    def test_histogram_rejects_bad_bounds_and_empty_percentile(self):
        registry = MetricsRegistry()
        with pytest.raises(TelemetryError):
            registry.histogram("bad", bounds=(1.0, 0.5))
        empty = registry.histogram("empty")
        with pytest.raises(TelemetryError):
            empty.percentile(50)

    def test_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TelemetryError):
            registry.gauge("x")

    def test_snapshot_and_pipeline_preregistration(self):
        registry = MetricsRegistry.for_pipeline()
        assert "cache.hits" in registry.names()
        registry.counter("cache.hits").inc(3)
        registry.histogram("pipeline.stage_seconds").observe(0.2)
        snapshot = registry.snapshot()
        assert snapshot["cache.hits"] == {"kind": "counter", "value": 3}
        stage = snapshot["pipeline.stage_seconds"]
        assert stage["count"] == 1
        assert stage["p50"] == pytest.approx(0.2)

    def test_thread_safety_under_contention(self):
        counter = MetricsRegistry().counter("n")
        barrier = threading.Barrier(8)

        def work():
            barrier.wait()
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestLatencyBuckets:
    """Log-spaced bounds and bucket-interpolated percentile estimates —
    what keeps the serve layer's latency histograms honest at sub-ms
    scales and under reservoir overflow."""

    def test_log_spaced_bounds_shape(self):
        from repro.telemetry import log_spaced_bounds

        bounds = log_spaced_bounds(1e-4, 10.0, 6)
        assert len(bounds) == 6
        assert bounds[0] == 1e-4
        assert bounds[-1] == 10.0
        # Geometric spacing: constant ratio between adjacent bounds.
        ratios = [b2 / b1 for b1, b2 in zip(bounds, bounds[1:])]
        assert all(r == pytest.approx(ratios[0]) for r in ratios)
        assert all(b2 > b1 for b1, b2 in zip(bounds, bounds[1:]))

    def test_log_spaced_bounds_validation(self):
        from repro.telemetry import log_spaced_bounds

        with pytest.raises(TelemetryError):
            log_spaced_bounds(0.0, 1.0, 5)
        with pytest.raises(TelemetryError):
            log_spaced_bounds(1.0, 0.5, 5)
        with pytest.raises(TelemetryError):
            log_spaced_bounds(0.1, 1.0, 1)

    def test_default_latency_buckets_resolve_sub_ms(self):
        from repro.telemetry import DEFAULT_LATENCY_BUCKETS

        histogram = MetricsRegistry().histogram(
            "fast", bounds=DEFAULT_LATENCY_BUCKETS
        )
        # With the old linear default (coarsest bound 0.01s) every one
        # of these would land in the same first bucket.
        for value in (20e-6, 90e-6, 400e-6, 2e-3):
            histogram.observe(value)
        occupied = [
            label
            for label, count in histogram.bucket_counts().items()
            if count
        ]
        assert len(occupied) == 4

    def test_percentile_estimate_tracks_full_stream(self):
        histogram = MetricsRegistry().histogram(
            "hot", bounds=tuple((i + 1) / 100 for i in range(100))
        )
        histogram._max_samples = 50  # force reservoir overflow
        for i in range(1000):
            histogram.observe(((i * 7919) % 1000 + 0.5) / 1000)
        assert len(histogram._samples) == 50
        # Exact percentiles describe only the first 50 observations;
        # the estimate interpolates the buckets, covering all 1000.
        assert histogram.percentile_estimate(50) == pytest.approx(
            0.5, abs=0.02
        )
        p50, p99 = histogram.percentile_estimate([50, 99])
        assert p99 == pytest.approx(0.99, abs=0.02)
        assert p50 < p99

    def test_percentile_estimate_validation(self):
        histogram = MetricsRegistry().histogram("empty-est")
        with pytest.raises(TelemetryError):
            histogram.percentile_estimate(50)
        histogram.observe(0.1)
        with pytest.raises(TelemetryError):
            histogram.percentile_estimate(101)

    def test_summary_switches_to_estimate_on_overflow(self):
        histogram = MetricsRegistry().histogram(
            "switch", bounds=(0.1, 0.2, 0.4, 0.8)
        )
        histogram._max_samples = 4
        for value in (0.05, 0.15, 0.3, 0.6):
            histogram.observe(value)
        exact = histogram.summary()
        assert exact["p50"] == histogram.percentile(50)
        histogram.observe(0.7)  # overflows the 4-sample reservoir
        estimated = histogram.summary()
        assert estimated["count"] == 5
        assert estimated["p50"] == histogram.percentile_estimate(50)


class TestTelemetryFacade:
    def test_ensure_normalizes_none(self):
        assert ensure(None) is NULL_TELEMETRY
        tel = Telemetry()
        assert ensure(tel) is tel

    def test_null_telemetry_is_disabled_and_inert(self):
        tel = NullTelemetry()
        assert not tel.enabled
        tel.metrics.counter("x").inc()
        assert tel.metrics.snapshot() == {}
        assert tel.tracer.spans() == ()

    def test_enabled_telemetry_defaults(self):
        tel = Telemetry()
        assert tel.enabled
        assert "pipeline.stage_seconds" in tel.metrics.names()


def _traced_diamond_run(parallel=False):
    """Run a tiny diamond DAG under fresh telemetry; returns (tel, run)."""
    tel = Telemetry()
    pipeline = Pipeline(
        [
            Stage("base", lambda inputs: [1, 2, 3]),
            Stage("left", lambda inputs: sum(inputs["base"]), deps=("base",)),
            Stage("right", lambda inputs: max(inputs["base"]), deps=("base",)),
            Stage(
                "join",
                lambda inputs: inputs["left"] + inputs["right"],
                deps=("left", "right"),
            ),
        ],
        name="traced-diamond",
    )
    cache = ArtifactCache()
    run = pipeline.run(cache=cache, parallel=parallel, telemetry=tel)
    return tel, pipeline, cache, run


class TestPipelineInstrumentation:
    def test_spans_cover_run_and_stages(self):
        tel, _, _, run = _traced_diamond_run()
        spans = tel.tracer.spans()
        names = {s.name for s in spans}
        assert "pipeline.run" in names
        assert {"stage:base", "stage:left", "stage:right", "stage:join"} <= names
        run_span = next(s for s in spans if s.name == "pipeline.run")
        for span in spans:
            if span.name.startswith("stage:"):
                assert span.parent_id == run_span.span_id
                assert span.tags["outcome"] == "executed"

    def test_metrics_count_executions(self):
        tel, _, _, run = _traced_diamond_run()
        snapshot = tel.metrics.snapshot()
        assert snapshot["pipeline.stages_executed"]["value"] == 4
        assert snapshot["pipeline.stages_cached"]["value"] == 0
        assert snapshot["pipeline.stage_seconds"]["count"] == 4
        assert snapshot["cache.stores"]["value"] == 4

    def test_warm_run_records_cached_outcomes(self):
        tel, pipeline, cache, _ = _traced_diamond_run()
        warm_tel = Telemetry()
        warm = pipeline.run(cache=cache, telemetry=warm_tel)
        assert warm.executed == ()
        outcomes = [
            s.tags.get("outcome")
            for s in warm_tel.tracer.spans()
            if s.name.startswith("stage:")
        ]
        assert outcomes == ["cached"] * 4
        snapshot = warm_tel.metrics.snapshot()
        assert snapshot["pipeline.stages_cached"]["value"] == 4
        assert snapshot["pipeline.stages_executed"]["value"] == 0

    def test_cache_binding_is_restored_after_run(self):
        tel, _, cache, _ = _traced_diamond_run()
        assert cache.telemetry is None  # bound only for the run's duration

    def test_parallelism_gauge_sees_concurrency(self):
        barrier = threading.Barrier(2)

        def rendezvous(inputs):
            barrier.wait(timeout=10)
            return True

        tel = Telemetry()
        pipeline = Pipeline(
            [Stage("a", rendezvous), Stage("b", rendezvous)],
            name="concurrent",
        )
        pipeline.run(parallel=True, max_workers=2, telemetry=tel)
        assert tel.metrics.gauge("pipeline.parallelism").max == 2

    def test_failed_stage_span_tags_error(self):
        def boom(inputs):
            raise ValueError("kaput")

        tel = Telemetry()
        pipeline = Pipeline([Stage("boom", boom)], name="failing")
        with pytest.raises(StageExecutionError):
            pipeline.run(telemetry=tel)
        span = next(
            s for s in tel.tracer.spans() if s.name == "stage:boom"
        )
        assert "error" in span.tags

    def test_manifest_writes_counted(self, tmp_path):
        tel = Telemetry()
        pipeline = Pipeline(
            [Stage("a", lambda inputs: 1)], name="manifested"
        )
        manifest = RunManifest(tmp_path / "run.json")
        pipeline.run(manifest=manifest, telemetry=tel)
        # begin() + one mark_complete -> at least two ledger writes.
        assert tel.metrics.counter("manifest.writes").value >= 2
        assert manifest.telemetry is None  # unbound afterwards


class TestCacheStats:
    def test_stats_snapshot(self, tmp_path):
        from repro.pipeline import stable_digest

        cache = ArtifactCache(tmp_path)
        key = stable_digest("k")
        cache.store(key, list(range(100)))
        cache.load(key)
        cache.get(stable_digest("absent"))
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["stores"] == 1
        assert stats["evictions"] == 0
        assert stats["entries"] == 1
        assert stats["disk_bytes"] > 0
        assert stats["directory"] == str(tmp_path)

    def test_eviction_counted_only_when_present(self, tmp_path):
        from repro.pipeline import stable_digest

        cache = ArtifactCache(tmp_path)
        cache.evict(stable_digest("ghost"))
        assert cache.evictions == 0
        key = stable_digest("real")
        cache.store(key, "v")
        cache.evict(key)
        assert cache.evictions == 1

    def test_corrupt_artifact_recovery_counts_eviction(self, tmp_path):
        """Cache rot healed by the runner must show up in stats()."""
        pipeline = Pipeline(
            [Stage("only", lambda inputs: {"v": 42})], name="rotten"
        )
        pipeline.run(cache=ArtifactCache(tmp_path))
        for path in tmp_path.glob("*.pkl"):
            path.write_bytes(b"garbage")
        healing_cache = ArtifactCache(tmp_path)
        rerun = pipeline.run(cache=healing_cache)
        assert rerun["only"] == {"v": 42}
        stats = healing_cache.stats()
        assert stats["evictions"] == 1  # the corrupt artifact was purged
        assert stats["stores"] == 1  # and re-stored after recompute

    def test_telemetry_mirrors_counters(self, tmp_path):
        from repro.pipeline import stable_digest

        tel = Telemetry()
        cache = ArtifactCache(tmp_path, telemetry=tel)
        key = stable_digest("k")
        cache.store(key, "value")
        cache.load(key)
        cache.evict(key)
        snapshot = tel.metrics.snapshot()
        assert snapshot["cache.stores"]["value"] == 1
        assert snapshot["cache.hits"]["value"] == 1
        assert snapshot["cache.evictions"]["value"] == 1
        assert snapshot["cache.bytes_written"]["value"] > 0


class TestExporters:
    def test_events_jsonl_roundtrip(self, tmp_path):
        tel, _, _, _ = _traced_diamond_run()
        path = write_events_jsonl(tel, tmp_path / "events.jsonl")
        lines = path.read_text(encoding="utf-8").splitlines()
        events = [json.loads(line) for line in lines]
        span_lines = [e for e in events if e["type"] == "span"]
        metric_lines = [e for e in events if e["type"] == "metric"]
        assert len(span_lines) == 5  # 4 stages + pipeline.run
        assert any(e["name"] == "cache.stores" for e in metric_lines)
        assert span_events(tel)[0]["type"] == "span"

    def test_chrome_trace_structure(self):
        tel, _, _, _ = _traced_diamond_run()
        trace = chrome_trace(tel)
        events = trace["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        metadata = [e for e in events if e["ph"] == "M"]
        assert len(complete) == 5
        assert metadata, "thread metadata events expected"
        for event in complete:
            assert event["ts"] >= 0
            assert event["dur"] >= 0
            assert isinstance(event["tid"], int)
        stage_events = [e for e in complete if e["name"].startswith("stage:")]
        assert all("cpu_ms" in e["args"] for e in stage_events)

    def test_chrome_trace_file_loads(self, tmp_path):
        tel, _, _, _ = _traced_diamond_run()
        path = write_chrome_trace(tel, tmp_path / "trace.json")
        events = load_chrome_trace(path)
        assert {e["name"] for e in events} >= {"pipeline.run", "stage:join"}

    def test_load_chrome_trace_accepts_bare_array(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text(
            json.dumps([{"name": "x", "ph": "X", "ts": 0, "dur": 5}]),
            encoding="utf-8",
        )
        assert len(load_chrome_trace(path)) == 1

    def test_load_chrome_trace_rejects_garbage(self, tmp_path):
        missing = tmp_path / "missing.json"
        with pytest.raises(TelemetryError):
            load_chrome_trace(missing)
        bad = tmp_path / "bad.json"
        bad.write_text("not json", encoding="utf-8")
        with pytest.raises(TelemetryError):
            load_chrome_trace(bad)
        empty = tmp_path / "empty.json"
        empty.write_text('{"traceEvents": []}', encoding="utf-8")
        with pytest.raises(TelemetryError):
            load_chrome_trace(empty)


class TestProfileReport:
    def test_stage_profiles_aggregate_and_rank(self):
        tel, pipeline, cache, _ = _traced_diamond_run()
        pipeline.run(cache=cache, telemetry=tel)  # warm: adds cached spans
        profiles = {p.name: p for p in stage_profiles(tel.tracer.spans())}
        assert set(profiles) == {"base", "left", "right", "join"}
        base = profiles["base"]
        assert base.executions == 1
        assert base.cache_hits == 1
        assert base.hit_ratio == 0.5
        assert base.wall >= base.self_time >= 0.0

    def test_report_contents(self):
        tel, _, cache, _ = _traced_diamond_run()
        report = profile_report(tel, cache_stats=cache.stats())
        assert "Profile —" in report
        assert "base" in report and "join" in report
        assert "hit ratio" in report
        assert "4 store(s)" in report
        assert "stage duration percentiles" in report

    def test_report_top_n(self):
        tel, _, _, _ = _traced_diamond_run()
        report = profile_report(tel, top=2)
        assert "more stage(s) omitted" in report

    def test_disabled_telemetry_reports_a_hint(self):
        report = profile_report(NULL_TELEMETRY)
        assert "disabled" in report

    def test_render_trace(self, tmp_path):
        tel, _, _, _ = _traced_diamond_run()
        path = write_chrome_trace(tel, tmp_path / "trace.json")
        text = render_trace(load_chrome_trace(path), width=40)
        assert "trace —" in text
        assert "stage:join" in text
        assert "#" in text
        assert render_trace([]) == "(empty trace)"


class TestStructuredLogger:
    def test_events_record_level_name_and_fields(self):
        log = StructuredLogger()
        log.info("cache.miss", key="abc", n=3)
        (event,) = log.events()
        assert event.event == "cache.miss"
        assert event.level == "info"
        assert event.fields == {"key": "abc", "n": 3}
        assert event.thread_id == threading.get_ident()
        assert event.span_id is None

    def test_level_filtering(self):
        log = StructuredLogger(level="warning")
        assert log.debug("dropped") is None
        assert log.info("dropped") is None
        assert log.warning("kept") is not None
        assert log.error("kept.too") is not None
        assert [e.event for e in log.events()] == ["kept", "kept.too"]
        assert [e.event for e in log.events(min_level="error")] == [
            "kept.too"
        ]

    def test_unknown_level_raises(self):
        log = StructuredLogger()
        with pytest.raises(TelemetryError, match="unknown log level"):
            log.log("loud", "x")
        with pytest.raises(TelemetryError):
            StructuredLogger(level="shouty")

    def test_span_correlation(self):
        tracer = Tracer()
        log = StructuredLogger(tracer=tracer)
        log.info("outside")
        with tracer.span("stage:collect") as span:
            log.info("inside")
        events = {e.event: e for e in log.events()}
        assert events["outside"].span_id is None
        assert events["inside"].span_id == span.span_id

    def test_ndjson_lines_parse_and_nest_fields(self):
        log = StructuredLogger()
        log.warning("cache.evict", key="abc123")
        (line,) = log.lines()
        payload = json.loads(line)
        assert payload["type"] == "log"
        assert payload["event"] == "cache.evict"
        assert payload["fields"] == {"key": "abc123"}

    def test_stream_receives_one_line_per_event(self):
        import io

        stream = io.StringIO()
        log = StructuredLogger(stream=stream)
        log.info("one")
        log.info("two")
        lines = stream.getvalue().splitlines()
        assert [json.loads(line)["event"] for line in lines] == [
            "one", "two"
        ]

    def test_write_ndjson_and_clear(self, tmp_path):
        log = StructuredLogger()
        log.info("a")
        path = log.write_ndjson(tmp_path / "sub" / "events.ndjson")
        assert path.read_text(encoding="utf-8").count("\n") == 1
        log.clear()
        assert log.events() == ()

    def test_levels_table_is_ordered(self):
        assert (
            LOG_LEVELS["debug"]
            < LOG_LEVELS["info"]
            < LOG_LEVELS["warning"]
            < LOG_LEVELS["error"]
        )

    def test_null_logger_is_inert(self):
        assert not NULL_LOGGER.enabled
        assert NULL_LOGGER.debug("x", a=1) is None
        assert NULL_LOGGER.events() == ()
        assert NULL_LOGGER.lines() == []
        NULL_LOGGER.clear()
        assert isinstance(NULL_LOGGER, NullLogger)

    def test_telemetry_facade_binds_logger_to_its_tracer(self):
        tel = Telemetry()
        assert isinstance(tel.log, StructuredLogger)
        assert tel.log.tracer is tel.tracer
        assert isinstance(NULL_TELEMETRY.log, NullLogger)


class TestRunnerLogEvents:
    def test_traced_run_narrates_plan_stages_and_finish(self):
        tel, _, _, _ = _traced_diamond_run()
        events = [e.event for e in tel.log.events()]
        assert events[0] == "pipeline.plan"
        assert events[-1] == "pipeline.finish"
        assert events.count("stage.start") == 4
        assert events.count("stage.finish") == 4
        plan = tel.log.events()[0]
        assert plan.fields["must_run"] == ["base", "left", "right", "join"]

    def test_stage_error_is_logged_before_raising(self):
        tel = Telemetry()
        pipeline = Pipeline(
            [Stage("boom", lambda inputs: 1 / 0)], name="log-error"
        )
        with pytest.raises(StageExecutionError):
            pipeline.run(cache=ArtifactCache(), telemetry=tel)
        errors = [e for e in tel.log.events() if e.level == "error"]
        assert [e.event for e in errors] == ["stage.error"]
        assert "ZeroDivisionError" in errors[0].fields["error"]

    def test_cache_corruption_is_logged(self, tmp_path):
        tel = Telemetry()
        pipeline = Pipeline(
            [Stage("stage", lambda inputs: [1, 2])], name="log-rot"
        )
        cache = ArtifactCache(tmp_path)
        pipeline.run(cache=cache, telemetry=tel)
        # Corrupt the on-disk artifact, drop the memory layer, re-run.
        for path in tmp_path.glob("*.pkl"):
            path.write_bytes(b"corrupt")
        fresh = ArtifactCache(tmp_path)
        result = pipeline.run(cache=fresh, telemetry=tel)
        assert result.executed == ("stage",)
        events = [e.event for e in tel.log.events()]
        assert "cache.corrupt" in events
        assert "cache.rot" in events
        assert "cache.evict" in events
