"""Unit tests for capability/requirement embeddings and the match model."""

import numpy as np
import pytest

from repro.continuum.capabilities import capability_matrix, capability_vector
from repro.continuum.matching import MatchModel
from repro.continuum.requirements import requirement_matrix, requirement_vector
from repro.errors import ValidationError


class TestCapabilityVector:
    def test_primary_direction_dominates(self, tools, scheme):
        vector = capability_vector(tools["liqo"], scheme)
        assert vector[scheme.index("orchestration")] == vector.max()

    def test_l1_normalized(self, tools, scheme):
        vector = capability_vector(tools["streamflow"], scheme)
        assert vector.sum() == pytest.approx(1.0)
        assert (vector >= 0).all()

    def test_secondary_direction_present(self, tools, scheme):
        vector = capability_vector(tools["streamflow"], scheme,
                                   text_weight=0.0)
        assert vector[scheme.index("performance-portability")] > 0

    def test_structure_only_mode(self, tools, scheme):
        vector = capability_vector(tools["liqo"], scheme, text_weight=0.0)
        expected = np.zeros(5)
        expected[scheme.index("orchestration")] = 1.0
        np.testing.assert_allclose(vector, expected)

    def test_validation(self, tools, scheme):
        with pytest.raises(ValidationError):
            capability_vector(tools["liqo"], scheme, secondary_weight=2.0)
        with pytest.raises(ValidationError):
            capability_vector(tools["liqo"], scheme, text_weight=1.0)

    def test_matrix_shape(self, tools, scheme):
        matrix, keys = capability_matrix(tools, scheme)
        assert matrix.shape == (25, 5)
        assert keys == tools.keys
        np.testing.assert_allclose(matrix.sum(axis=1), 1.0)


class TestRequirementVector:
    def test_serverledge_needs_orchestration_and_energy(self, applications, scheme):
        vector = requirement_vector(applications["serverledge"], scheme)
        orch = vector[scheme.index("orchestration")]
        energy = vector[scheme.index("energy-efficiency")]
        assert orch == vector.max()
        assert energy > 0.05  # smoothed floor exceeded by real signal

    def test_smoothing_floor(self, applications, scheme):
        vector = requirement_vector(applications["variant-calling"], scheme,
                                    smoothing=0.1)
        assert (vector > 0).all()
        assert vector.sum() == pytest.approx(1.0)

    def test_no_smoothing_can_zero(self, applications, scheme):
        vector = requirement_vector(applications["variant-calling"], scheme,
                                    smoothing=0.0)
        assert vector.sum() == pytest.approx(1.0)

    def test_validation(self, applications, scheme):
        with pytest.raises(ValidationError):
            requirement_vector(applications["serverledge"], scheme,
                               smoothing=-0.1)

    def test_matrix_ordered_by_section(self, applications, scheme):
        matrix, keys = requirement_matrix(applications, scheme)
        assert matrix.shape == (10, 5)
        assert keys[0] == "software-heritage-compression"
        assert keys[-1] == "mlir-riscv"


class TestMatchModel:
    @pytest.fixture(scope="class")
    def model(self, tools, applications, scheme):
        return MatchModel(tools, applications, scheme)

    def test_scores_shape_and_bounds(self, model):
        assert model.scores.shape == (10, 25)
        assert (model.scores >= -1e-9).all()

    def test_scores_readonly(self, model):
        with pytest.raises(ValueError):
            model.scores[0, 0] = 1.0

    def test_cardinality_evaluation_shape_claims(self, model):
        report = model.evaluate()
        # The matcher must reproduce the paper's headline ranking.
        assert report.rank_match_top  # orchestration most demanded
        assert report.agreement["f1"] >= 0.5
        assert report.predicted.total_selections == 28

    def test_energy_demand_stays_minimal(self, model):
        report = model.evaluate()
        assert report.predicted_votes["energy-efficiency"] <= min(
            v for v in report.predicted_votes.values()
        ) + 1

    def test_select_top_k_deterministic(self, model):
        k_map = {key: 2 for key in model.application_keys}
        a = model.select_top_k(k_map)
        b = model.select_top_k(k_map)
        assert a == b
        assert a.total_selections == 20

    def test_select_top_k_validation(self, model):
        with pytest.raises(ValidationError):
            model.select_top_k({model.application_keys[0]: -1})

    def test_select_threshold_monotone(self, model):
        low = model.select_threshold(0.1).total_selections
        high = model.select_threshold(0.6).total_selections
        assert high <= low

    def test_evaluation_mode_threshold(self, model):
        report = model.evaluate(mode="threshold:0.45")
        assert 0.0 <= report.agreement["f1"] <= 1.0

    def test_unknown_mode(self, model):
        with pytest.raises(ValidationError):
            model.evaluate(mode="oracle")

    def test_direction_weight_validation(self, tools, applications, scheme):
        with pytest.raises(ValidationError):
            MatchModel(tools, applications, scheme, direction_weight=1.5)
