"""Unit tests for the TF-IDF model."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.text.vectorize import TfidfModel, preprocess


DOCS = [
    "Workflow orchestration across cloud and HPC environments.",
    "Energy efficient placement of virtual machines.",
    "Stream processing on multicore architectures for big data.",
    "Workflow scheduling and orchestration with energy constraints.",
]


class TestPreprocess:
    def test_removes_stopwords_and_stems(self):
        tokens = preprocess("The orchestration of workflows")
        assert "the" not in tokens
        assert "of" not in tokens
        assert any(t.startswith("orchestr") for t in tokens)

    def test_stemming_optional(self):
        tokens = preprocess("running workflows", stem=False)
        assert "running" in tokens


class TestTfidfModel:
    @pytest.fixture(scope="class")
    def model(self):
        return TfidfModel(DOCS)

    def test_matrix_shape_and_norms(self, model):
        assert model.matrix.shape[0] == len(DOCS)
        norms = np.linalg.norm(model.matrix, axis=1)
        np.testing.assert_allclose(norms, 1.0, rtol=1e-9)

    def test_self_similarity_highest(self, model):
        sims = model.similarity(DOCS)
        for i in range(len(DOCS)):
            assert sims[i, i] == pytest.approx(sims[i].max())

    def test_related_docs_more_similar(self, model):
        sims = model.similarity([DOCS[0]])[0]
        # Doc 3 shares "workflow orchestration energy"; doc 1 shares nothing.
        assert sims[3] > sims[1]

    def test_out_of_vocabulary_query(self, model):
        row = model.transform(["zzz qqq entirely unseen"])[0]
        assert np.all(row == 0.0)

    def test_pairwise_symmetric(self, model):
        pairwise = model.pairwise_similarity()
        np.testing.assert_allclose(pairwise, pairwise.T, atol=1e-12)
        np.testing.assert_allclose(np.diag(pairwise), 1.0)

    def test_top_terms(self, model):
        terms = model.top_terms(1, k=3)
        assert 1 <= len(terms) <= 3
        words = [t for t, _ in terms]
        assert any(w.startswith("energi") or w.startswith("placem")
                   or w.startswith("virtual") or w.startswith("machin")
                   for w in words)

    def test_top_terms_validation(self, model):
        with pytest.raises(ValidationError):
            model.top_terms(99)
        with pytest.raises(ValidationError):
            model.top_terms(0, k=0)

    def test_min_df_prunes(self):
        model = TfidfModel(DOCS, min_df=2)
        # Only terms in >= 2 docs survive; "multicore" appears once.
        assert all(not term.startswith("multicor") for term in model.vocabulary)

    def test_min_df_too_high(self):
        with pytest.raises(ValidationError):
            TfidfModel(["unique words here", "totally different text"], min_df=2)

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValidationError):
            TfidfModel([])

    def test_sublinear_off(self):
        model = TfidfModel(DOCS, sublinear_tf=False)
        assert model.matrix.shape[0] == len(DOCS)
