"""Unit tests for :mod:`repro.obs`: the run ledger (:class:`RunRegistry`),
record building/digesting, and the :func:`compare_runs` watchdog."""

from __future__ import annotations

import json

import pytest

from repro.errors import LedgerError
from repro.obs import (
    EXIT_DRIFT,
    EXIT_OK,
    EXIT_PERF,
    ArtifactDigest,
    RunRecord,
    RunRegistry,
    StageStats,
    build_simulation_record,
    build_study_record,
    compare_bench_suites,
    compare_runs,
    default_runs_dir,
    digest_items,
    study_artifacts,
)
from repro.telemetry import StructuredLogger, Telemetry


def make_record(run_id: str, **overrides) -> RunRecord:
    """A small, fully-populated record for ledger/compare tests."""
    payload = {
        "run_id": run_id,
        "kind": "test",
        "created_utc": f"2026-01-01T00:00:{int(run_id[-2:]) % 60:02d}Z"
        if run_id[-2:].isdigit()
        else "2026-01-01T00:00:00Z",
        "dataset_version": "data-v1",
        "config_digest": "config-v1",
        "wall_s": 1.0,
        "stages": {"collect": StageStats(wall_s=0.5, cpu_s=0.4, executions=1)},
        "metrics": {"cache.hits": 3.0},
        "artifacts": {"table1": digest_items([["a", 1], ["b", 2]])},
        "meta": {"seed": "2023"},
    }
    payload.update(overrides)
    return RunRecord(**payload)


class TestDigestItems:
    def test_identical_items_identical_digests(self):
        a = digest_items([{"x": 1}, {"y": 2}])
        b = digest_items([{"x": 1}, {"y": 2}])
        assert a == b
        assert a.n_items == 2

    def test_dict_key_order_never_fakes_drift(self):
        a = digest_items([{"x": 1, "y": 2}])
        b = digest_items([{"y": 2, "x": 1}])
        assert a.sha256 == b.sha256

    def test_reordering_changes_only_ordered_digest(self):
        a = digest_items([["r1"], ["r2"]])
        b = digest_items([["r2"], ["r1"]])
        assert a.sha256 != b.sha256
        assert a.content_sha256 == b.content_sha256

    def test_value_change_changes_both_digests(self):
        a = digest_items([["r1", 1]])
        b = digest_items([["r1", 2]])
        assert a.sha256 != b.sha256
        assert a.content_sha256 != b.content_sha256


class TestRunRecordRoundTrip:
    def test_to_dict_from_dict_round_trips(self):
        record = make_record("r01")
        clone = RunRecord.from_dict(record.to_dict())
        assert clone == record

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(ValueError):
            RunRecord.from_dict({"kind": "no-run-id"})
        with pytest.raises(ValueError):
            RunRecord.from_dict({"run_id": "x", "stages": "not-a-mapping"})

    def test_stage_stats_hit_ratio(self):
        assert StageStats(executions=1, cache_hits=3).hit_ratio == 0.75
        assert StageStats().hit_ratio is None


class TestRunRegistry:
    def test_record_and_read_back(self, tmp_path):
        registry = RunRegistry(tmp_path)
        registry.record(make_record("r01"))
        registry.record(make_record("r02"))
        assert [r.run_id for r in registry.runs()] == ["r01", "r02"]
        assert [r.run_id for r in registry.last(1)] == ["r02"]

    def test_get_by_id_and_unique_prefix(self, tmp_path):
        registry = RunRegistry(tmp_path)
        registry.record(make_record("20260101T000001Z-aaaa1111"))
        registry.record(make_record("20260102T000001Z-bbbb2222"))
        assert registry.get("20260102").run_id.endswith("bbbb2222")
        with pytest.raises(LedgerError, match="ambiguous"):
            registry.get("2026")
        with pytest.raises(LedgerError, match="no run"):
            registry.get("nope")

    def test_corrupt_line_skipped_with_warning(self, tmp_path):
        logger = StructuredLogger()
        registry = RunRegistry(tmp_path, logger=logger)
        registry.record(make_record("r01"))
        with registry.path.open("a", encoding="utf-8") as handle:
            handle.write('{"torn": "li\n')  # torn final write
            handle.write("not json at all\n")
        registry.record(make_record("r02"))
        assert [r.run_id for r in registry.runs()] == ["r01", "r02"]
        warnings = [
            e for e in logger.events() if e.event == "ledger.corrupt_line"
        ]
        assert len(warnings) == 2
        assert warnings[0].level == "warning"
        assert warnings[0].fields["line"] == 2

    def test_missing_ledger_reads_empty(self, tmp_path):
        registry = RunRegistry(tmp_path / "never-written")
        assert registry.runs() == []
        assert registry.gc(keep=3) == 0

    def test_default_runs_dir_honours_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "env-runs"))
        assert default_runs_dir() == tmp_path / "env-runs"
        monkeypatch.delenv("REPRO_RUNS_DIR")
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_runs_dir() == tmp_path / "xdg" / "repro" / "runs"


class TestRegistryGc:
    def test_gc_keeps_newest_n(self, tmp_path):
        registry = RunRegistry(tmp_path)
        for i in range(5):
            registry.record(make_record(f"r{i:02d}"))
        assert registry.gc(keep=2) == 3
        assert [r.run_id for r in registry.runs()] == ["r03", "r04"]

    def test_gc_drops_corrupt_lines_and_counts_them(self, tmp_path):
        logger = StructuredLogger()
        registry = RunRegistry(tmp_path, logger=logger)
        registry.record(make_record("r01"))
        with registry.path.open("a", encoding="utf-8") as handle:
            handle.write('{"truncated": \n')
        registry.record(make_record("r02"))
        registry.record(make_record("r03"))
        # 4 lines on disk; keep 2 readable records -> 2 dropped
        # (the oldest record and the corrupt line).
        assert registry.gc(keep=2) == 2
        assert [r.run_id for r in registry.runs()] == ["r02", "r03"]
        # The rewritten ledger is fully parseable.
        lines = registry.path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 2
        for line in lines:
            json.loads(line)

    def test_gc_keep_zero_empties_the_ledger(self, tmp_path):
        registry = RunRegistry(tmp_path)
        registry.record(make_record("r01"))
        assert registry.gc(keep=0) == 1
        assert registry.runs() == []

    def test_gc_rejects_negative_keep(self, tmp_path):
        with pytest.raises(LedgerError):
            RunRegistry(tmp_path).gc(keep=-1)


class TestCompareDrift:
    def test_identical_records_exit_ok(self):
        a, b = make_record("r01"), make_record("r02")
        comparison = compare_runs(a, b)
        assert comparison.ok
        assert comparison.exit_code() == EXIT_OK

    def test_value_drift_exits_3(self):
        a = make_record("r01")
        b = make_record(
            "r02", artifacts={"table1": digest_items([["a", 1], ["b", 999]])}
        )
        comparison = compare_runs(a, b)
        assert [d.kind for d in comparison.drift] == ["value"]
        assert comparison.exit_code() == EXIT_DRIFT
        assert "table1" in comparison.report()

    def test_benign_ordering_is_reported_but_passes(self):
        a = make_record("r01")
        b = make_record(
            "r02", artifacts={"table1": digest_items([["b", 2], ["a", 1]])}
        )
        comparison = compare_runs(a, b)
        assert [d.kind for d in comparison.drift] == ["benign-ordering"]
        assert comparison.exit_code() == EXIT_OK

    def test_added_and_removed_artifacts_fail_the_gate(self):
        a = make_record("r01")
        b = make_record(
            "r02",
            artifacts={
                "table1": digest_items([["a", 1], ["b", 2]]),
                "fig9": digest_items([["new"]]),
            },
        )
        comparison = compare_runs(a, b)
        assert {d.kind for d in comparison.drift} == {"added"}
        assert comparison.exit_code() == EXIT_DRIFT

    def test_dataset_change_makes_drift_expected(self):
        a = make_record("r01")
        b = make_record(
            "r02",
            dataset_version="data-v2",
            artifacts={"table1": digest_items([["changed"]])},
        )
        comparison = compare_runs(a, b)
        assert [d.kind for d in comparison.drift] == ["expected-change"]
        assert comparison.exit_code() == EXIT_OK
        assert any("dataset_version changed" in n for n in comparison.notes)


class TestComparePerf:
    def test_single_baseline_flags_large_absolute_slowdown(self):
        a = make_record(
            "r01",
            stages={"collect": StageStats(wall_s=1.0, executions=1)},
        )
        b = make_record(
            "r02",
            stages={"collect": StageStats(wall_s=2.0, executions=1)},
        )
        comparison = compare_runs(a, b)
        assert [r.stage for r in comparison.regressions] == ["collect"]
        assert comparison.exit_code() == EXIT_PERF

    def test_millisecond_noise_is_not_a_regression(self):
        a = make_record(
            "r01", wall_s=0.002,
            stages={"collect": StageStats(wall_s=0.001, executions=1)},
        )
        b = make_record(
            "r02", wall_s=0.006,
            stages={"collect": StageStats(wall_s=0.003, executions=1)},
        )
        assert compare_runs(a, b).exit_code() == EXIT_OK

    def test_cached_vs_executed_stages_are_not_compared(self):
        a = make_record(
            "r01",
            stages={"collect": StageStats(wall_s=1.0, executions=1)},
        )
        b = make_record(
            "r02",
            stages={
                "collect": StageStats(wall_s=0.001, executions=0, cache_hits=1)
            },
        )
        comparison = compare_runs(a, b)
        assert comparison.exit_code() == EXIT_OK
        assert any("execution counts differ" in n for n in comparison.notes)

    def test_window_requires_significance(self):
        # A noisy baseline window: the candidate is within the spread,
        # so the ratio threshold alone must not flag it.
        window = [
            make_record(
                f"r{i:02d}",
                stages={
                    "collect": StageStats(wall_s=w, executions=1)
                },
            )
            for i, w in enumerate([0.5, 2.2, 0.6, 2.4, 0.7])
        ]
        candidate = make_record(
            "r99",
            stages={"collect": StageStats(wall_s=1.2, executions=1)},
        )
        comparison = compare_runs(window, candidate)
        assert comparison.exit_code() == EXIT_OK

    def test_window_confirms_consistent_slowdown(self):
        window = [
            make_record(
                f"r{i:02d}",
                stages={"collect": StageStats(wall_s=w, executions=1)},
            )
            for i, w in enumerate([1.00, 1.02, 0.98, 1.01, 0.99])
        ]
        candidate = make_record(
            "r99",
            stages={"collect": StageStats(wall_s=3.0, executions=1)},
        )
        comparison = compare_runs(window, candidate)
        assert comparison.exit_code() == EXIT_PERF
        (delta,) = comparison.regressions
        assert delta.p_value is not None and delta.p_value < 0.05

    def test_improvements_are_reported_not_fatal(self):
        a = make_record(
            "r01",
            stages={"collect": StageStats(wall_s=2.0, executions=1)},
        )
        b = make_record(
            "r02",
            stages={"collect": StageStats(wall_s=0.5, executions=1)},
        )
        comparison = compare_runs(a, b)
        assert [i.stage for i in comparison.improvements] == ["collect"]
        assert comparison.exit_code() == EXIT_OK

    def test_empty_baseline_raises(self):
        with pytest.raises(LedgerError):
            compare_runs([], make_record("r01"))


class TestCompareBenchSuites:
    def test_identical_suites_pass(self):
        payload = {
            "suite": "corpus",
            "results": {"test_a": {"min_s": 0.01, "mean_s": 0.012}},
        }
        assert compare_bench_suites(payload, payload).exit_code() == EXIT_OK

    def test_slowdown_flags_perf_exit(self):
        base = {"results": {"test_a": {"min_s": 0.010}}}
        cand = {"results": {"test_a": {"min_s": 0.100}}}
        comparison = compare_bench_suites(base, cand)
        assert comparison.exit_code() == EXIT_PERF

    def test_malformed_payload_raises(self):
        with pytest.raises(LedgerError, match="results"):
            compare_bench_suites({"benchmark": "x"}, {"results": {}})


class TestStudyRecords:
    """Acceptance: two identical study runs digest identically; a
    perturbed result digests differently and fails the gate."""

    @pytest.fixture(scope="class")
    def results(self):
        from repro import run_icsc_study

        return run_icsc_study()

    def test_artifact_set_covers_the_paper_outputs(self, results):
        artifacts = study_artifacts(results)
        assert set(artifacts) == {
            "table1", "table2", "fig2_distribution", "fig3_coverage",
            "fig4_votes", "supply_shares", "demand_shares",
            "report_sections",
        }
        assert all(a.n_items > 0 for a in artifacts.values())

    def test_identical_runs_compare_clean(self, results, tmp_path):
        registry = RunRegistry(tmp_path)
        a = registry.record(build_study_record(results))
        b = registry.record(build_study_record(results))
        assert a.artifacts == b.artifacts
        assert a.run_id != b.run_id
        comparison = compare_runs(*registry.last(2))
        assert comparison.exit_code() == EXIT_OK
        assert not comparison.drift

    def test_perturbed_results_fail_the_gate(self, results, tmp_path):
        baseline = build_study_record(results)
        perturbed = build_study_record(results)
        # Simulate value drift in one artifact (a changed Fig. 2 series).
        artifacts = dict(perturbed.artifacts)
        artifacts["fig2_distribution"] = digest_items([["tampered", 99]])
        perturbed = RunRecord(
            run_id=perturbed.run_id,
            kind=perturbed.kind,
            created_utc=perturbed.created_utc,
            dataset_version=perturbed.dataset_version,
            config_digest=perturbed.config_digest,
            wall_s=perturbed.wall_s,
            stages=perturbed.stages,
            metrics=perturbed.metrics,
            artifacts=artifacts,
            meta=perturbed.meta,
        )
        comparison = compare_runs(baseline, perturbed)
        assert comparison.exit_code() == EXIT_DRIFT
        assert [d.artifact for d in comparison.value_drift] == [
            "fig2_distribution"
        ]

    def test_telemetry_lifts_stage_stats(self, tmp_path):
        from repro.pipeline import ArtifactCache
        from repro.pipeline.study import run_icsc_pipeline

        tel = Telemetry()
        registry = RunRegistry(tmp_path)
        results, run = run_icsc_pipeline(
            cache=ArtifactCache(), telemetry=tel, registry=registry
        )
        (record,) = registry.runs()
        assert record.kind == "icsc-study"
        assert set(record.stages) == {
            "collect", "classify", "survey", "analyze"
        }
        assert all(s.executions == 1 for s in record.stages.values())
        assert record.wall_s > 0.0
        assert record.config_digest
        assert record.metrics["pipeline.stages_executed"] == 4.0


class TestSimulationRecords:
    def test_simulation_record_carries_failure_metrics(self, tmp_path):
        from repro.continuum import HeftScheduler, default_continuum
        from repro.continuum.failures import simulate_with_failures
        from repro.continuum.workflow import random_workflow

        tel = Telemetry()
        continuum = default_continuum()
        workflow = random_workflow(n_tasks=12, seed=7)
        schedule = HeftScheduler().schedule(
            workflow, continuum, telemetry=tel
        )
        trace = simulate_with_failures(
            schedule,
            mtbf=schedule.makespan / 3,
            repair_time=1.0,
            policy="migrate",
            seed=11,
            telemetry=tel,
        )
        record = build_simulation_record(trace, telemetry=tel)
        assert record.kind == "continuum-sim"
        assert record.artifacts["placements"].n_items == len(workflow)
        assert record.metrics["sim.makespan"] == trace.makespan
        assert record.metrics["sim.tasks"] == float(len(workflow))
        assert record.metrics["sim.retries"] == float(trace.n_failures)
        assert record.metrics["sim.failures_injected"] >= float(
            trace.n_failures
        )
        registry = RunRegistry(tmp_path)
        registry.record(record)
        assert registry.last(1)[0].metrics == record.metrics

    def test_seeded_simulations_record_identical_placements(self):
        from repro.continuum import HeftScheduler, default_continuum
        from repro.continuum.simulate import simulate_schedule
        from repro.continuum.workflow import random_workflow

        continuum = default_continuum()
        workflow = random_workflow(n_tasks=10, seed=3)
        schedule = HeftScheduler().schedule(workflow, continuum)
        a = build_simulation_record(
            simulate_schedule(schedule, jitter=0.1, seed=5)
        )
        b = build_simulation_record(
            simulate_schedule(schedule, jitter=0.1, seed=5)
        )
        assert a.artifacts == b.artifacts
        assert compare_runs(a, b).exit_code() == EXIT_OK
