"""Unit tests for the Porter stemmer (canonical examples from Porter 1980)."""

import pytest

from repro.text.stem import porter_stem, stem_tokens

# (word, expected stem) pairs from the examples in Porter's paper, step by step.
CANONICAL = [
    # Step 1a
    ("caresses", "caress"), ("ponies", "poni"), ("ties", "ti"),
    ("caress", "caress"), ("cats", "cat"),
    # Step 1b
    ("feed", "feed"), ("agreed", "agre"), ("plastered", "plaster"),
    ("bled", "bled"), ("motoring", "motor"), ("sing", "sing"),
    ("conflated", "conflat"), ("troubled", "troubl"), ("sized", "size"),
    ("hopping", "hop"), ("tanned", "tan"), ("falling", "fall"),
    ("hissing", "hiss"), ("fizzed", "fizz"), ("failing", "fail"),
    ("filing", "file"),
    # Step 1c
    ("happy", "happi"), ("sky", "sky"),
    # Step 2
    ("relational", "relat"), ("conditional", "condit"), ("rational", "ration"),
    ("valenci", "valenc"), ("hesitanci", "hesit"), ("digitizer", "digit"),
    ("conformabli", "conform"), ("radicalli", "radic"),
    ("differentli", "differ"), ("vileli", "vile"), ("analogousli", "analog"),
    ("vietnamization", "vietnam"), ("predication", "predic"),
    ("operator", "oper"), ("feudalism", "feudal"),
    ("decisiveness", "decis"), ("hopefulness", "hope"),
    ("callousness", "callous"), ("formaliti", "formal"),
    ("sensitiviti", "sensit"), ("sensibiliti", "sensibl"),
    # Step 3
    ("triplicate", "triplic"), ("formative", "form"), ("formalize", "formal"),
    ("electriciti", "electr"), ("electrical", "electr"), ("hopeful", "hope"),
    ("goodness", "good"),
    # Step 4
    ("revival", "reviv"), ("allowance", "allow"), ("inference", "infer"),
    ("airliner", "airlin"), ("gyroscopic", "gyroscop"),
    ("adjustable", "adjust"), ("defensible", "defens"), ("irritant", "irrit"),
    ("replacement", "replac"), ("adjustment", "adjust"),
    ("dependent", "depend"), ("adoption", "adopt"), ("homologou", "homolog"),
    ("communism", "commun"), ("activate", "activ"),
    ("angulariti", "angular"), ("homologous", "homolog"),
    ("effective", "effect"), ("bowdlerize", "bowdler"),
    # Step 5
    ("probate", "probat"), ("rate", "rate"), ("cease", "ceas"),
    ("controll", "control"), ("roll", "roll"),
]


@pytest.mark.parametrize("word,expected", CANONICAL)
def test_canonical_examples(word, expected):
    assert porter_stem(word) == expected


class TestEdgeCases:
    def test_short_words_unchanged(self):
        assert porter_stem("a") == "a"
        assert porter_stem("is") == "is"

    def test_non_alpha_unchanged(self):
        assert porter_stem("risc-v") == "risc-v"
        assert porter_stem("2023") == "2023"
        assert porter_stem("tf-idf") == "tf-idf"

    def test_conflates_domain_variants(self):
        assert porter_stem("orchestration") == porter_stem("orchestrate")
        assert porter_stem("scheduling") == porter_stem("schedule")

    def test_idempotent_on_dataset_vocabulary(self, tools):
        from repro.text.tokenize import tokenize

        for tool in tools:
            for token in tokenize(tool.description):
                once = porter_stem(token)
                assert porter_stem(once) in (once, porter_stem(once))

    def test_stem_tokens_preserves_length(self):
        tokens = ["running", "jumps", "quickly"]
        assert len(stem_tokens(tokens)) == 3
