"""Property-based tests for inter-rater agreement coefficients."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.screening.agreement import (
    cohen_kappa,
    fleiss_kappa,
    krippendorff_alpha,
    observed_agreement,
)

labels = st.sampled_from(["a", "b", "c"])
label_lists = st.lists(labels, min_size=2, max_size=60)


class TestCohenKappaProperties:
    @given(label_lists)
    def test_perfect_agreement_is_one(self, seq):
        assert cohen_kappa(seq, seq) == pytest.approx(1.0)

    @given(label_lists, label_lists)
    def test_bounded(self, a, b):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        kappa = cohen_kappa(a, b)
        assert -1.0 - 1e-9 <= kappa <= 1.0 + 1e-9

    @given(label_lists, label_lists)
    def test_symmetry(self, a, b):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        assert cohen_kappa(a, b) == pytest.approx(cohen_kappa(b, a))

    @given(label_lists, label_lists)
    def test_kappa_leq_observed(self, a, b):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        po = observed_agreement(a, b)
        kappa = cohen_kappa(a, b)
        # kappa = (po - pe) / (1 - pe) <= po when po <= 1.
        assert kappa <= po + 1e-9


class TestFleissKappaProperties:
    @given(
        st.lists(
            st.sampled_from([0, 1, 2]), min_size=2, max_size=40
        ),
        st.integers(min_value=2, max_value=5),
    )
    def test_unanimous_raters_is_one(self, truths, n_raters):
        rows = [{label: n_raters} for label in truths]
        # Degenerate: all items same category -> expected agreement 1.
        if len({tuple(r.items()) for r in rows}) == 1:
            assert fleiss_kappa(rows) == 1.0
        else:
            assert fleiss_kappa(rows) == pytest.approx(1.0)

    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)),
                    min_size=2, max_size=40))
    def test_bounded(self, pairs):
        rows = []
        for a, b in pairs:
            counts: dict[int, int] = {}
            counts[a] = counts.get(a, 0) + 1
            counts[b] = counts.get(b, 0) + 1
            rows.append(counts)
        kappa = fleiss_kappa(rows)
        assert -1.0 - 1e-9 <= kappa <= 1.0 + 1e-9


class TestKrippendorffProperties:
    @given(label_lists, st.integers(min_value=2, max_value=4))
    def test_identical_raters_is_one(self, seq, n_raters):
        assert krippendorff_alpha([list(seq)] * n_raters) == pytest.approx(1.0)

    @given(label_lists, label_lists)
    def test_bounded(self, a, b):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        alpha = krippendorff_alpha([a, b])
        assert -1.5 <= alpha <= 1.0 + 1e-9

    @given(label_lists)
    def test_missing_data_ignored_items(self, seq):
        # Adding an item rated by a single rater must not change alpha.
        a = list(seq) + ["a"]
        b = list(seq) + [None]
        base = krippendorff_alpha([list(seq), list(seq)])
        extended = krippendorff_alpha([a, b])
        assert extended == pytest.approx(base)
