"""Golden-output tests: the regenerated tables byte-for-byte.

Pins the exact rendered form of the paper's tables so incidental changes to
the renderers or the dataset surface as diffs here.
"""

from repro.tables.table1 import build_table1
from repro.tables.table2 import build_table2

TABLE1_TEXT = """\
Collected tools classified in five research directions.
Interactive computing  Orchestration  Energy efficiency  Performance portability  Big Data management
---------------------  -------------  -----------------  -----------------------  -------------------
BookedSlurm            TORCH          PESOS              FastFlow                 ParSoDA
ICS                    INDIGO         Lapegna et al.     Nethuns                  MALAGA
Jupyter Workflow       Liqo           De Lucia et al.    INSANE                   aMLLibrary
                       StreamFlow                        CAPIO                    WindFlow
                       SPF                               BLEST-ML                 CHD
                       BDMaaS+                           MLIR                     Mingotti et al.
                       MoveQUIC"""


def test_table1_plain_text_golden(tools, scheme):
    assert build_table1(tools, scheme).to_text() == TABLE1_TEXT


def test_table1_markdown_golden_fragment(tools, scheme):
    md = build_table1(tools, scheme).to_markdown()
    assert (
        "| BookedSlurm | TORCH | PESOS | FastFlow | ParSoDA |" in md
    )
    assert "|  | MoveQUIC |  |  |  |" in md


def test_table2_markdown_golden_rows(tools, applications, scheme):
    md = build_table2(tools, applications, scheme).to_markdown()
    # StreamFlow: checks at 3.2, 3.3, 3.10.
    assert (
        "|  | StreamFlow |  | ✓ | ✓ |  |  |  |  |  |  | ✓ |" in md
    )
    # PESOS: single check at 3.5.
    assert (
        "| Energy efficiency | PESOS |  |  |  |  | ✓ |  |  |  |  |  |" in md
    )


def test_table2_latex_golden_fragments(tools, applications, scheme):
    tex = build_table2(tools, applications, scheme).to_latex()
    assert r"\begin{tabular}{llllllllllll}" in tex
    assert r"BDMaaS+ " in tex.replace(r"BDMaaS\+", "BDMaaS+") or "BDMaaS" in tex
    assert tex.count("✓") == 28
