"""Unit tests for the ecosystem network analysis."""

import pytest

from repro.errors import ValidationError
from repro.network.bipartite import (
    institution_direction_graph,
    project_institutions,
    project_tools,
    tool_application_graph,
)
from repro.network.metrics import (
    centrality_ranking,
    degree_distribution,
    density_report,
    integration_pairs,
    specialization_index,
)


@pytest.fixture(scope="module")
def inst_graph(tools, scheme):
    return institution_direction_graph(tools, scheme)


@pytest.fixture(scope="module")
def tool_graph(tools, applications):
    return tool_application_graph(tools, applications)


class TestInstitutionDirectionGraph:
    def test_node_counts(self, inst_graph):
        institutions = [n for n, d in inst_graph.nodes(data=True)
                        if d["bipartite"] == "institution"]
        directions = [n for n, d in inst_graph.nodes(data=True)
                      if d["bipartite"] == "direction"]
        assert len(institutions) == 9
        assert len(directions) == 5

    def test_edge_weights_count_tools(self, inst_graph):
        # UNIPI has 4 performance-portability tools.
        assert inst_graph.edges["unipi", "performance-portability"]["weight"] == 4

    def test_degree_is_fig3_data(self, inst_graph):
        degrees = degree_distribution(inst_graph, "institution")
        from collections import Counter

        histogram = Counter(degrees.values())
        assert dict(histogram) == {1: 5, 2: 2, 3: 1, 4: 1}


class TestToolApplicationGraph:
    def test_isolated_tools_kept(self, tool_graph):
        # Tools never selected still appear (e.g. bookedslurm, torch).
        assert "bookedslurm" in tool_graph
        assert tool_graph.degree("bookedslurm") == 0

    def test_edge_count_is_28(self, tool_graph):
        assert tool_graph.number_of_edges() == 28

    def test_streamflow_degree(self, tool_graph):
        assert tool_graph.degree("streamflow") == 3


class TestProjections:
    def test_institution_projection_links_shared_directions(self, inst_graph):
        projection = project_institutions(inst_graph)
        # UNIFE and POLITO both do orchestration.
        assert projection.has_edge("unife", "polito")

    def test_tool_projection_weights(self, tool_graph):
        projection = project_tools(tool_graph)
        # ICS and ParSoDA co-selected by 3.9; nethuns+capio by 3.2 and 3.6.
        assert projection.edges["nethuns", "capio"]["weight"] == 2

    def test_integration_pairs(self, tool_graph):
        projection = project_tools(tool_graph)
        pairs = integration_pairs(projection, min_weight=2)
        assert ("capio", "nethuns", 2) in pairs
        assert ("indigo", "liqo", 2) in pairs
        assert all(w >= 2 for _, _, w in pairs)

    def test_integration_pairs_validation(self, tool_graph):
        with pytest.raises(ValidationError):
            integration_pairs(project_tools(tool_graph), min_weight=0)


class TestMetrics:
    def test_specialization_extremes(self, inst_graph):
        # CINECA covers one direction (fully specialized).
        assert specialization_index(inst_graph, "cineca") == pytest.approx(1.0)
        # UNIPI covers four directions — least specialized in the dataset.
        assert specialization_index(inst_graph, "unipi") < 0.5

    def test_specialization_validation(self, inst_graph):
        with pytest.raises(ValidationError):
            specialization_index(inst_graph, "ghost")

    def test_centrality_degree(self, tool_graph):
        ranking = centrality_ranking(tool_graph, "tool")
        assert ranking[0][0] == "streamflow"

    def test_centrality_other_methods(self, tool_graph):
        for method in ("betweenness", "eigenvector"):
            ranking = centrality_ranking(tool_graph, "tool", method=method)
            assert len(ranking) == 25

    def test_centrality_unknown_method(self, tool_graph):
        with pytest.raises(ValidationError):
            centrality_ranking(tool_graph, "tool", method="pagerank")

    def test_density_report(self, tool_graph):
        report = density_report(tool_graph)
        assert report["edges"] == 28.0
        assert report["possible_edges"] == 250.0
        assert report["density"] == pytest.approx(28 / 250)
        assert report["components"] >= 1

    def test_degree_distribution_unknown_side(self, tool_graph):
        with pytest.raises(ValidationError):
            degree_distribution(tool_graph, "nonexistent-side")
