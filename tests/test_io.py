"""Unit tests for JSON/CSV serialization."""

import json

import pytest

from repro.core.analysis import coverage_histogram, supply_distribution
from repro.errors import SerializationError
from repro.io.csvio import (
    frequency_from_csv,
    frequency_to_csv,
    selection_from_csv,
    selection_to_csv,
)
from repro.io.jsonio import (
    ecosystem_from_dict,
    ecosystem_to_dict,
    load_ecosystem,
    save_ecosystem,
)


class TestEcosystemJson:
    def test_roundtrip(self, ecosystem, tmp_path):
        institutions, tools, applications, scheme = ecosystem
        path = tmp_path / "eco.json"
        save_ecosystem(path, institutions, tools, applications, scheme)
        loaded = load_ecosystem(path)
        inst2, tools2, apps2, scheme2 = loaded
        assert inst2.keys == institutions.keys
        assert tools2.keys == tools.keys
        assert apps2.keys == applications.keys
        assert scheme2.keys == scheme.keys
        for key in tools.keys:
            assert tools2[key] == tools[key]
        for key in applications.keys:
            assert apps2[key] == applications[key]

    def test_version_check(self, ecosystem):
        document = ecosystem_to_dict(*ecosystem)
        document["format_version"] = 99
        with pytest.raises(SerializationError):
            ecosystem_from_dict(document)

    def test_malformed_document(self):
        with pytest.raises(SerializationError):
            ecosystem_from_dict({"format_version": 1, "scheme": {}})

    def test_dangling_reference_caught_on_load(self, ecosystem):
        document = ecosystem_to_dict(*ecosystem)
        document["tools"][0]["institution"] = "ghost"
        with pytest.raises(Exception):
            ecosystem_from_dict(document)

    def test_unreadable_path(self, tmp_path):
        with pytest.raises(SerializationError):
            load_ecosystem(tmp_path / "missing.json")

    def test_json_is_pretty_and_stable(self, ecosystem, tmp_path):
        path = tmp_path / "eco.json"
        save_ecosystem(path, *ecosystem)
        text = path.read_text()
        json.loads(text)
        assert text.endswith("\n")


class TestFrequencyCsv:
    def test_roundtrip_string_labels(self, tools, scheme):
        table = supply_distribution(tools, scheme)
        restored = frequency_from_csv(frequency_to_csv(table))
        assert restored == table

    def test_roundtrip_int_labels(self, tools, scheme):
        table = coverage_histogram(tools, scheme)
        restored = frequency_from_csv(frequency_to_csv(table))
        assert restored == table  # integer keys restored as ints

    def test_file_roundtrip(self, tools, scheme, tmp_path):
        table = supply_distribution(tools, scheme)
        path = tmp_path / "fig2.csv"
        frequency_to_csv(table, path)
        assert frequency_from_csv(path) == table

    def test_header_required(self):
        with pytest.raises(SerializationError):
            frequency_from_csv("wrong,header\na,1\n")

    def test_bad_count(self):
        with pytest.raises(SerializationError):
            frequency_from_csv("label,count\na,many\n")

    def test_no_rows(self):
        with pytest.raises(SerializationError):
            frequency_from_csv("label,count\n")


class TestSelectionCsv:
    def test_roundtrip(self, selection):
        restored = selection_from_csv(selection_to_csv(selection))
        assert restored == selection

    def test_file_roundtrip(self, selection, tmp_path):
        path = tmp_path / "table2.csv"
        selection_to_csv(selection, path)
        assert selection_from_csv(path) == selection

    def test_header_required(self):
        with pytest.raises(SerializationError):
            selection_from_csv("nottool,a\nx,1\n")

    def test_non_binary_cell(self):
        with pytest.raises(SerializationError):
            selection_from_csv("tool,a\nx,maybe\n")

    def test_row_width_mismatch(self):
        with pytest.raises(SerializationError):
            selection_from_csv("tool,a,b\nx,1\n")
